//! The simulator's socket-buffer (`skb`) analogue.
//!
//! The kernel represents every packet as an `skb` that travels through the
//! stages of the receive path. The simulated skb carries just enough
//! metadata for steering, ordering, GRO accounting and latency attribution;
//! payload bytes are virtual (a length) in simulation runs and real frames
//! are exercised by `mflow-net` and the integration tests.

use mflow_sim::Time;

/// Index of a flow in the stack's flow table.
pub type FlowId = usize;

/// Micro-flow tag attached by MFLOW's splitter (stored in the real kernel
/// inside the skb control block, per the paper's §III-B footnote).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MicroflowTag {
    /// Position of this micro-flow in the original flow (the merging
    /// counter compares against this).
    pub id: u64,
    /// Splitting core this micro-flow was dispatched to.
    pub core: usize,
    /// True on the final skb of the micro-flow batch: tells the merger the
    /// batch is complete and the counter may advance.
    pub last_in_batch: bool,
}

/// Completion marker for an application message whose final segment is
/// carried by this skb (GRO can merge the tails of up to a few messages
/// into one super-skb, so this is a list).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgEnd {
    pub msg_id: u64,
    /// When the client began `sendmsg` for this message.
    pub send_ns: Time,
    /// Payload bytes of the message.
    pub msg_bytes: u64,
    /// Wire segments the message consisted of.
    pub msg_segs: u32,
}

/// A simulated packet traversing the receive path.
#[derive(Clone, Debug)]
pub struct Skb {
    /// Global NIC arrival sequence (per receive direction). Out-of-order
    /// detection compares these.
    pub wire_seq: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// RSS (Toeplitz) hash of the flow's 4-tuple, copied into every skb the
    /// way the NIC writes it into the descriptor.
    pub hash: u32,
    /// Bytes on the wire (frame length including all headers).
    pub wire_bytes: u32,
    /// Application payload bytes carried.
    pub payload_bytes: u32,
    /// Number of wire segments merged into this skb (1 until GRO).
    pub segs: u32,
    /// Cumulative TCP-style byte offset of the first payload byte within
    /// the flow (64-bit: the simulator does not model sequence wraparound).
    pub byte_seq: u64,
    /// Messages completed by this skb.
    pub msg_ends: Vec<MsgEnd>,
    /// NIC arrival timestamp of the (first) segment.
    pub arrival_ns: Time,
    /// Micro-flow tag, set once MFLOW splits the flow.
    pub mf: Option<MicroflowTag>,
    /// Core that executed the previous stage (for locality penalties).
    pub last_core: Option<usize>,
}

impl Skb {
    /// Creates a fresh single-segment skb as the driver would.
    pub fn new(
        wire_seq: u64,
        flow: FlowId,
        wire_bytes: u32,
        payload_bytes: u32,
        byte_seq: u64,
        arrival_ns: Time,
    ) -> Self {
        Self {
            wire_seq,
            flow,
            hash: 0,
            wire_bytes,
            payload_bytes,
            segs: 1,
            byte_seq,
            msg_ends: Vec::new(),
            arrival_ns,
            mf: None,
            last_core: None,
        }
    }

    /// Marks this skb as completing message `msg_id`.
    pub fn with_msg_end(mut self, end: MsgEnd) -> Self {
        self.msg_ends.push(end);
        self
    }

    /// End byte offset (exclusive) of the payload within the flow.
    pub fn byte_end(&self) -> u64 {
        self.byte_seq + self.payload_bytes as u64
    }

    /// True if `other` continues this skb's payload contiguously — the
    /// condition GRO checks before merging.
    pub fn is_contiguous_with(&self, other: &Skb) -> bool {
        self.flow == other.flow && self.byte_end() == other.byte_seq
    }

    /// Absorbs `other` into this skb (GRO merge). The micro-flow tag's
    /// `last_in_batch` flag and message completions are inherited.
    pub fn absorb(&mut self, other: Skb) {
        debug_assert!(self.is_contiguous_with(&other));
        self.wire_bytes += other.wire_bytes;
        self.payload_bytes += other.payload_bytes;
        self.segs += other.segs;
        self.msg_ends.extend(other.msg_ends);
        if let (Some(mine), Some(theirs)) = (&mut self.mf, &other.mf) {
            mine.last_in_batch |= theirs.last_in_batch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skb(seq: u64, byte_seq: u64, len: u32) -> Skb {
        Skb::new(seq, 0, len + 66, len, byte_seq, 1000)
    }

    #[test]
    fn contiguity() {
        let a = skb(0, 0, 1448);
        let b = skb(1, 1448, 1448);
        let c = skb(2, 4000, 1448);
        assert!(a.is_contiguous_with(&b));
        assert!(!a.is_contiguous_with(&c));
        assert!(!b.is_contiguous_with(&a));
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = skb(0, 0, 1448);
        let b = skb(1, 1448, 1448).with_msg_end(MsgEnd {
            msg_id: 7,
            send_ns: 5,
            msg_bytes: 2896,
            msg_segs: 2,
        });
        a.absorb(b);
        assert_eq!(a.segs, 2);
        assert_eq!(a.payload_bytes, 2896);
        assert_eq!(a.msg_ends.len(), 1);
        assert_eq!(a.byte_end(), 2896);
    }

    #[test]
    fn absorb_inherits_last_in_batch() {
        let mut a = skb(0, 0, 100);
        a.mf = Some(MicroflowTag {
            id: 3,
            core: 2,
            last_in_batch: false,
        });
        let mut b = skb(1, 100, 100);
        b.mf = Some(MicroflowTag {
            id: 3,
            core: 2,
            last_in_batch: true,
        });
        a.absorb(b);
        assert!(a.mf.unwrap().last_in_batch);
    }

    #[test]
    fn different_flows_never_contiguous() {
        let a = skb(0, 0, 100);
        let mut b = skb(1, 100, 100);
        b.flow = 1;
        assert!(!a.is_contiguous_with(&b));
    }
}
