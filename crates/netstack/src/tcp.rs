//! TCP receive-side state: in-order enforcement with the kernel's
//! per-packet out-of-order queue, plus the sender's window accounting.
//!
//! This is the *stateful* stage that MFLOW must merge micro-flows before.
//! When packets arrive out of order (e.g. because a flow was split without
//! reassembly), every early packet pays an expensive `tcp_ooo_insert`,
//! which is exactly the overhead the paper's batch-based reassembly avoids.

use std::collections::BTreeMap;

use crate::skb::Skb;

/// Per-flow TCP receive state, factored out of [`TcpReceiver`] so it can
/// be *cloned per lane* under state-compute replication: every lane holds
/// its own replica and advances it idempotently over the segments that
/// lane happens to see, while the authoritative copy (the reconciler)
/// runs the same strict machine over the merged record stream.
///
/// All byte offsets are `u64` cumulative stream offsets, so streams that
/// start near `u32::MAX` (wire-level sequence wraparound) need no modular
/// arithmetic here — the unit tests below cross that boundary explicitly.
#[derive(Clone, Debug, Default)]
pub struct FlowState {
    /// Next expected payload byte offset.
    expected: u64,
    /// Out-of-order queue keyed by byte offset.
    ooo: BTreeMap<u64, Skb>,
    /// Total skbs that took the out-of-order path.
    ooo_inserts: u64,
    /// Largest wire sequence seen (for arrival-order inversion stats).
    max_wire_seq: Option<u64>,
    /// Count of arrival-order inversions observed at this stage.
    inversions: u64,
    /// Duplicate / overlapping segments discarded.
    dups: u64,
}

impl FlowState {
    /// Creates state expecting byte 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next expected byte offset.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Skbs that were inserted into the out-of-order queue.
    pub fn ooo_inserts(&self) -> u64 {
        self.ooo_inserts
    }

    /// Arrival-order inversions seen (wire_seq lower than a prior one).
    pub fn inversions(&self) -> u64 {
        self.inversions
    }

    /// Duplicates discarded.
    pub fn dups(&self) -> u64 {
        self.dups
    }

    /// Skbs currently parked in the out-of-order queue.
    pub fn ooo_len(&self) -> usize {
        self.ooo.len()
    }

    fn note_arrival(&mut self, wire_seq: u64) {
        if let Some(max) = self.max_wire_seq {
            if wire_seq < max {
                self.inversions += 1;
            }
        }
        self.max_wire_seq = Some(self.max_wire_seq.map_or(wire_seq, |m| m.max(wire_seq)));
    }

    /// Receives one skb. Returns `(deliverable, ooo_inserted)`: the skbs
    /// now deliverable in order (possibly including previously parked
    /// ones), and whether this skb took the out-of-order path.
    pub fn receive(&mut self, skb: Skb) -> (Vec<Skb>, bool) {
        self.note_arrival(skb.wire_seq);

        if skb.byte_end() <= self.expected {
            self.dups += 1;
            return (Vec::new(), false);
        }
        if skb.byte_seq != self.expected {
            // Hole: park it. (Overlap handling: keyed by start offset;
            // duplicates with identical offset are dropped.)
            let inserted = self.ooo.insert(skb.byte_seq, skb);
            if inserted.is_some() {
                self.dups += 1;
            }
            self.ooo_inserts += 1;
            return (Vec::new(), true);
        }
        let mut out = Vec::with_capacity(1 + self.ooo.len());
        self.expected = skb.byte_end();
        out.push(skb);
        // Drain any parked segments that are now contiguous.
        while let Some(entry) = self.ooo.first_entry() {
            if *entry.key() == self.expected {
                let s = entry.remove();
                self.expected = s.byte_end();
                out.push(s);
            } else if *entry.key() < self.expected {
                // Stale overlap.
                entry.remove();
                self.dups += 1;
            } else {
                break;
            }
        }
        (out, false)
    }

    /// State-compute-replication advance for a *lane replica*: identical
    /// bookkeeping to [`receive`](Self::receive), except segments are
    /// emitted as delivery records the moment this replica first sees
    /// them (a lane only holds its share of the flow, so holes are the
    /// normal case, not the exception — records go downstream and the
    /// reconciler restores order).
    ///
    /// Returns `Some(record)` exactly once per distinct segment; a second
    /// advance over the same segment is a no-op (`None`), which is what
    /// makes replicated transitions safe to replay after duplication or
    /// redispatch. The replica's `expected` watermark tracks the strict
    /// machine byte for byte, so a suppression here implies the
    /// reconciler already received records covering those bytes.
    pub fn advance_replicated(&mut self, skb: Skb) -> Option<Skb> {
        self.note_arrival(skb.wire_seq);

        if skb.byte_end() <= self.expected {
            self.dups += 1;
            return None;
        }
        if skb.byte_seq != self.expected {
            if self.ooo.contains_key(&skb.byte_seq) {
                // Already recorded this segment out of order.
                self.dups += 1;
                return None;
            }
            self.ooo.insert(skb.byte_seq, skb.clone());
            self.ooo_inserts += 1;
            return Some(skb);
        }
        self.expected = skb.byte_end();
        let record = skb;
        // Ride the watermark over parked segments whose records already
        // went out — same drain as `receive`, minus the re-emission.
        while let Some(entry) = self.ooo.first_entry() {
            if *entry.key() == self.expected {
                let s = entry.remove();
                self.expected = s.byte_end();
            } else if *entry.key() < self.expected {
                // Stale overlap.
                entry.remove();
                self.dups += 1;
            } else {
                break;
            }
        }
        Some(record)
    }

    /// A crash-consistent restore point: an independent deep copy of the
    /// watermark, the out-of-order queue and every counter. A restored
    /// copy fed the remaining segment stream delivers byte-identically to
    /// the uninterrupted machine — the same contract the runtime's
    /// merger-state checkpoints rely on for `MergeCounter` and
    /// `ScrReconciler`, extended here so the simulator's stateful stage
    /// is snapshot-capable too.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// Estimated snapshot size in bytes (parked skbs dominate; map
    /// overhead approximated). For checkpoint telemetry, not a wire
    /// format.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        (size_of::<Self>() + self.ooo.len() * (size_of::<u64>() + size_of::<Skb>())) as u64
    }
}

/// Receive-side reordering state for one TCP flow: the authoritative
/// (strict, in-order-delivering) view over a [`FlowState`].
#[derive(Debug, Default)]
pub struct TcpReceiver {
    state: FlowState,
}

impl TcpReceiver {
    /// Creates state expecting byte 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next expected byte offset.
    pub fn expected(&self) -> u64 {
        self.state.expected()
    }

    /// Skbs that were inserted into the out-of-order queue.
    pub fn ooo_inserts(&self) -> u64 {
        self.state.ooo_inserts()
    }

    /// Arrival-order inversions seen (wire_seq lower than a prior one).
    pub fn inversions(&self) -> u64 {
        self.state.inversions()
    }

    /// Duplicates discarded.
    pub fn dups(&self) -> u64 {
        self.state.dups()
    }

    /// Skbs currently parked in the out-of-order queue.
    pub fn ooo_len(&self) -> usize {
        self.state.ooo_len()
    }

    /// Receives one skb. Returns `(deliverable, ooo_inserted)`: the skbs
    /// now deliverable in order (possibly including previously parked
    /// ones), and whether this skb took the out-of-order path.
    pub fn receive(&mut self, skb: Skb) -> (Vec<Skb>, bool) {
        self.state.receive(skb)
    }
}

/// One maximum segment size, for congestion-window arithmetic.
pub const MSS: u64 = 1448;

/// Sender-side window and congestion control for one TCP flow: classic
/// slow start + AIMD congestion avoidance, with timeout-driven recovery
/// (the stack retransmits from the cumulative ACK on RTO).
#[derive(Clone, Copy, Debug)]
pub struct TcpSender {
    /// Receive-window cap (the paper's ~2000 outstanding MTU packets
    /// corresponds to ~3 MB).
    pub window_bytes: u64,
    /// Congestion window.
    pub cwnd_bytes: u64,
    /// Slow-start threshold.
    pub ssthresh: u64,
    /// Currently unacknowledged payload bytes.
    pub inflight: u64,
    /// Total payload bytes handed to the wire (highest byte offset sent).
    pub sent_bytes: u64,
    /// Total payload bytes acknowledged (cumulative ACK point).
    pub acked_bytes: u64,
    /// Retransmissions triggered.
    pub retransmits: u64,
}

impl TcpSender {
    /// Creates a sender with the given receive-window cap, starting in
    /// slow start with the standard 10-MSS initial window.
    pub fn new(window_bytes: u64) -> Self {
        Self {
            window_bytes,
            cwnd_bytes: 10 * MSS,
            ssthresh: u64::MAX,
            inflight: 0,
            sent_bytes: 0,
            acked_bytes: 0,
            retransmits: 0,
        }
    }

    /// The effective window: min(receive window, congestion window).
    pub fn effective_window(&self) -> u64 {
        self.window_bytes.min(self.cwnd_bytes)
    }

    /// Bytes that may be sent right now.
    pub fn available_window(&self) -> u64 {
        self.effective_window().saturating_sub(self.inflight)
    }

    /// Records `bytes` handed to the wire.
    pub fn on_send(&mut self, bytes: u64) {
        self.inflight += bytes;
        self.sent_bytes += bytes;
    }

    /// Records an ACK covering `bytes` new bytes and grows the congestion
    /// window (exponentially in slow start, ~1 MSS per window in
    /// congestion avoidance).
    pub fn on_ack(&mut self, bytes: u64) {
        let b = bytes.min(self.inflight);
        self.inflight -= b;
        self.acked_bytes += b;
        if self.cwnd_bytes < self.ssthresh {
            self.cwnd_bytes = (self.cwnd_bytes + b).min(self.window_bytes.max(10 * MSS));
        } else {
            let grow = (MSS * b) / self.cwnd_bytes.max(1);
            self.cwnd_bytes =
                (self.cwnd_bytes + grow.max(1)).min(self.window_bytes.max(10 * MSS));
        }
    }

    /// Reacts to a retransmission timeout: halve into `ssthresh`, collapse
    /// the congestion window, and rewind the send point to the cumulative
    /// ACK so the hole is resent.
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.inflight / 2).max(2 * MSS);
        self.cwnd_bytes = 10 * MSS;
        self.inflight = 0;
        self.sent_bytes = self.acked_bytes;
        self.retransmits += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(wire_seq: u64, byte_seq: u64, len: u32) -> Skb {
        Skb::new(wire_seq, 0, len + 66, len, byte_seq, 0)
    }

    #[test]
    fn in_order_stream_passes_straight_through() {
        let mut rx = TcpReceiver::new();
        for i in 0..100u64 {
            let (out, ooo) = rx.receive(seg(i, i * 1448, 1448));
            assert!(!ooo);
            assert_eq!(out.len(), 1);
        }
        assert_eq!(rx.ooo_inserts(), 0);
        assert_eq!(rx.inversions(), 0);
        assert_eq!(rx.expected(), 100 * 1448);
    }

    #[test]
    fn hole_parks_until_filled() {
        let mut rx = TcpReceiver::new();
        let (out, ooo) = rx.receive(seg(1, 1448, 1448));
        assert!(ooo);
        assert!(out.is_empty());
        assert_eq!(rx.ooo_len(), 1);
        // The missing first segment releases both.
        let (out, ooo) = rx.receive(seg(0, 0, 1448));
        assert!(!ooo);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].byte_seq, 0);
        assert_eq!(out[1].byte_seq, 1448);
        assert_eq!(rx.ooo_len(), 0);
        assert_eq!(rx.expected(), 2896);
    }

    #[test]
    fn reversed_burst_counts_inversions_and_inserts() {
        let mut rx = TcpReceiver::new();
        let n = 10u64;
        for i in (0..n).rev() {
            rx.receive(seg(i, i * 100, 100));
        }
        // Every packet except the last-arriving (wire_seq 0..) is an
        // inversion relative to the max seen.
        assert_eq!(rx.inversions(), n - 1);
        assert_eq!(rx.ooo_inserts(), n - 1);
        assert_eq!(rx.expected(), n * 100);
    }

    #[test]
    fn duplicates_are_discarded() {
        let mut rx = TcpReceiver::new();
        rx.receive(seg(0, 0, 100));
        let (out, _) = rx.receive(seg(1, 0, 100));
        assert!(out.is_empty());
        assert_eq!(rx.dups(), 1);
        assert_eq!(rx.expected(), 100);
    }

    #[test]
    fn interleaved_two_streams_reassemble() {
        // Micro-flow-like pattern: batches of 4 from two "cores" landing
        // alternately, second batch first.
        let mut rx = TcpReceiver::new();
        let mut delivered = Vec::new();
        let batch_a: Vec<Skb> = (0..4).map(|i| seg(i, i * 10, 10)).collect();
        let batch_b: Vec<Skb> = (4..8).map(|i| seg(i, i * 10, 10)).collect();
        for s in batch_b.into_iter().chain(batch_a) {
            let (out, _) = rx.receive(s);
            delivered.extend(out.into_iter().map(|s| s.byte_seq));
        }
        assert_eq!(delivered, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn stream_crossing_u32_wrap_boundary_delivers_in_order() {
        // Cumulative byte offsets straddling u32::MAX: the wire-level
        // sequence number would wrap here, but the model's u64 stream
        // offsets must sail straight through.
        let wrap = u32::MAX as u64;
        let start = wrap - 2 * 1448;
        let mut rx = TcpReceiver::new();
        // Pre-wrap prefix delivers the receiver up to `start`.
        let (out, _) = rx.receive(seg(0, 0, start as u32));
        assert_eq!(out.len(), 1);
        assert_eq!(rx.expected(), start);
        // Segments 0..4 cross the boundary; deliver them out of order.
        let offs: Vec<u64> = (0..4).map(|i| start + i * 1448).collect();
        for (w, &o) in [3usize, 1, 0, 2].iter().zip([offs[3], offs[1], offs[0], offs[2]].iter()) {
            rx.receive(seg(1 + *w as u64, o, 1448));
        }
        assert_eq!(rx.expected(), start + 4 * 1448);
        assert!(rx.expected() > wrap, "stream must end past the wrap point");
        assert_eq!(rx.ooo_len(), 0);
    }

    #[test]
    fn replica_crossing_u32_wrap_matches_strict_watermark() {
        let wrap = u32::MAX as u64;
        let start = wrap - 1448;
        let mut strict = FlowState::new();
        let mut replica = FlowState::new();
        let segs = [seg(0, 0, start as u32), seg(1, start, 1448), seg(2, start + 1448, 1448)];
        for s in &segs {
            strict.receive(s.clone());
            assert!(replica.advance_replicated(s.clone()).is_some());
        }
        assert_eq!(replica.expected(), strict.expected());
        assert!(replica.expected() > wrap);
    }

    #[test]
    fn partial_overlap_straddling_expected_drops_the_stale_copy() {
        // Deliver [0,100); then a super-segment [0,300) arrives (a
        // retransmit that got re-grouped). Strict semantics: it parks at
        // offset 0 and is discarded as a stale overlap once the stream
        // advances — its tail is *not* spliced in; the closed loop must
        // retransmit [100,300) on its own boundaries.
        let mut rx = TcpReceiver::new();
        rx.receive(seg(0, 0, 100));
        let (out, ooo) = rx.receive(seg(1, 0, 300));
        assert!(out.is_empty());
        assert!(ooo);
        let (out, _) = rx.receive(seg(2, 100, 100));
        assert_eq!(out.len(), 1);
        assert_eq!(rx.expected(), 200);
        assert_eq!(rx.dups(), 1, "stale overlap discarded during drain");
    }

    #[test]
    fn replica_advance_is_idempotent() {
        let mut replica = FlowState::new();
        // First sighting of each segment emits a record...
        assert!(replica.advance_replicated(seg(0, 0, 100)).is_some());
        assert!(replica.advance_replicated(seg(2, 200, 100)).is_some());
        // ...replaying either (delivered or parked) is a no-op.
        assert!(replica.advance_replicated(seg(0, 0, 100)).is_none());
        assert!(replica.advance_replicated(seg(2, 200, 100)).is_none());
        assert_eq!(replica.dups(), 2);
        // Filling the hole advances the watermark over the parked record
        // without re-emitting it.
        assert!(replica.advance_replicated(seg(1, 100, 100)).is_some());
        assert_eq!(replica.expected(), 300);
        assert_eq!(replica.ooo_len(), 0);
        // And the whole prefix is now suppressed on replay.
        assert!(replica.advance_replicated(seg(1, 100, 100)).is_none());
    }

    #[test]
    fn lane_replicas_plus_reconciler_match_strict_delivery() {
        // Two lanes each replicate the flow state over their half of the
        // stream (with a retransmit duplicate thrown in); the surviving
        // records, reconciled by a strict receiver, must deliver the
        // same bytes in the same order as merge-before-tcp (one strict
        // receiver fed the original stream).
        let segs: Vec<Skb> = (0..8u64).map(|i| seg(i, i * 100, 100)).collect();
        let mut strict = FlowState::new();
        let mut reference = Vec::new();
        for s in &segs {
            let (out, _) = strict.receive(s.clone());
            reference.extend(out.into_iter().map(|s| s.byte_seq));
        }

        let mut lane_a = FlowState::new();
        let mut lane_b = FlowState::new();
        let mut records = Vec::new();
        for (i, s) in segs.iter().enumerate() {
            let lane = if i % 2 == 0 { &mut lane_a } else { &mut lane_b };
            if let Some(r) = lane.advance_replicated(s.clone()) {
                records.push(r);
            }
            // A duplicated transition (fault-injected copy) is suppressed
            // by the replica that already advanced over it.
            if i == 3 {
                assert!(lane_b.advance_replicated(s.clone()).is_none());
            }
        }
        assert_eq!(records.len(), segs.len(), "one record per distinct segment");

        let mut reconciler = FlowState::new();
        let mut delivered = Vec::new();
        for r in records {
            let (out, _) = reconciler.receive(r);
            delivered.extend(out.into_iter().map(|s| s.byte_seq));
        }
        assert_eq!(delivered, reference);
    }

    #[test]
    fn sender_window_accounting() {
        let mut tx = TcpSender::new(1000);
        // Tiny receive window binds before the initial cwnd.
        assert_eq!(tx.available_window(), 1000);
        tx.on_send(700);
        assert_eq!(tx.available_window(), 300);
        tx.on_ack(500);
        assert_eq!(tx.available_window(), 800);
        assert_eq!(tx.acked_bytes, 500);
        // ACKs never underflow.
        tx.on_ack(10_000);
        assert_eq!(tx.inflight, 0);
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut tx = TcpSender::new(1 << 20);
        let start = tx.cwnd_bytes;
        assert_eq!(start, 10 * MSS);
        // ACK a full window: cwnd doubles in slow start.
        tx.on_send(start);
        tx.on_ack(start);
        assert_eq!(tx.cwnd_bytes, 2 * start);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut tx = TcpSender::new(1 << 20);
        tx.ssthresh = 10 * MSS; // already past slow start
        let before = tx.cwnd_bytes;
        tx.on_send(before);
        tx.on_ack(before);
        // ~1 MSS growth per window's worth of ACKs.
        let grown = tx.cwnd_bytes - before;
        assert!((MSS - 2..=MSS + 2).contains(&grown), "grew {grown}");
    }

    #[test]
    fn timeout_collapses_window_and_rewinds() {
        let mut tx = TcpSender::new(1 << 20);
        tx.on_send(200_000);
        tx.on_ack(50_000);
        tx.on_timeout();
        assert_eq!(tx.cwnd_bytes, 10 * MSS);
        assert_eq!(tx.ssthresh, 75_000); // half of 150k inflight
        assert_eq!(tx.sent_bytes, tx.acked_bytes);
        assert_eq!(tx.inflight, 0);
        assert_eq!(tx.retransmits, 1);
    }

    #[test]
    fn cwnd_never_exceeds_receive_window() {
        let mut tx = TcpSender::new(64 * 1024);
        for _ in 0..100 {
            let w = tx.available_window();
            if w > 0 {
                tx.on_send(w);
                tx.on_ack(w);
            }
        }
        assert!(tx.cwnd_bytes <= 64 * 1024);
    }

    #[test]
    fn flow_state_snapshot_resumes_identically() {
        // Scrambled arrival with a duplicate and an overlap: exercises
        // the ooo queue, dup counting and the contiguous drain.
        let stream: Vec<Skb> = vec![
            seg(1, 1000, 1000),
            seg(0, 0, 1000),
            seg(3, 3000, 1000),
            seg(3, 3000, 1000), // duplicate park
            seg(2, 2000, 1000),
            seg(5, 5000, 1000),
            seg(4, 4000, 1000),
        ];
        let mut whole = FlowState::new();
        let mut whole_out = Vec::new();
        for s in &stream {
            whole_out.extend(whole.receive(s.clone()).0);
        }
        for cut in 0..=stream.len() {
            let mut fs = FlowState::new();
            let mut out = Vec::new();
            for s in &stream[..cut] {
                out.extend(fs.receive(s.clone()).0);
            }
            let mut restored = fs.snapshot();
            drop(fs); // the original crashes here
            for s in &stream[cut..] {
                out.extend(restored.receive(s.clone()).0);
            }
            assert_eq!(
                out.iter().map(|s| s.byte_seq).collect::<Vec<_>>(),
                whole_out.iter().map(|s| s.byte_seq).collect::<Vec<_>>(),
                "delivery diverged at cut {cut}"
            );
            assert_eq!(restored.expected(), whole.expected());
            assert_eq!(restored.dups(), whole.dups());
            assert_eq!(restored.inversions(), whole.inversions());
            assert_eq!(restored.ooo_len(), whole.ooo_len());
        }
    }

    #[test]
    fn flow_state_approx_bytes_tracks_parked_segments() {
        let mut fs = FlowState::new();
        let empty = fs.approx_bytes();
        // Park 20 segments behind a missing head.
        for i in 1..=20u64 {
            fs.receive(seg(i, i * 1000, 900));
        }
        assert_eq!(fs.ooo_len(), 20);
        assert!(fs.approx_bytes() > empty + 20 * 8);
    }
}
