//! The end-to-end simulation: clients, wire, NIC ring, softirq cores,
//! stages, sockets and user-copy threads, driven by `mflow-sim` events.
//!
//! One [`StackSim`] models the receiver host (and lightweight client
//! machines) for one scenario. Steering behaviour is injected through the
//! [`PacketSteering`] and [`FlowMerger`] traits, so the same stack runs
//! vanilla, RPS, FALCON and MFLOW unchanged — exactly the property the
//! paper claims for its in-kernel mechanisms.

use std::collections::{BTreeMap, VecDeque};

use mflow_error::MflowError;
use mflow_metrics::Telemetry;
use mflow_sim::time::wire_ns;
use mflow_sim::{CoreId, CoreSet, Ctx, Engine, Model, Rng, Time};

use crate::config::{LoadModel, StackConfig};
use crate::faults::FaultPlan;
use crate::policy::{FlowMerger, LoadView, PacketSteering};
use crate::report::RunReport;
use crate::ring::RxRing;
use crate::scr::StatefulMode;
use crate::skb::{FlowId, MsgEnd, Skb};
use crate::socket::{SockItem, Socket};
use crate::stage::{Stage, Transport};
use crate::tcp::{FlowState, TcpReceiver, TcpSender};

/// Simulation events.
#[derive(Debug)]
pub enum Event {
    /// A client tries to send its next message.
    ClientKick { client: usize },
    /// A frame finished arriving at the NIC.
    NicArrive { skb: Skb },
    /// A core's softirq loop looks for work.
    CorePoll { core: CoreId },
    /// A core finished executing a stage over a batch.
    StageDone {
        core: CoreId,
        stage: Stage,
        batch: Vec<Skb>,
    },
    /// The receiver's ACK reached the client.
    AckArrive { client: usize, bytes: u64 },
    /// A socket's application thread wakes to copy data.
    AppWake { sock: usize },
    /// The application finished copying a batch to user space.
    CopyDone { sock: usize, items: Vec<SockItem> },
    /// Background interference burst on a core.
    Interfere { core: CoreId },
    /// TCP retransmission-timer check for a closed-loop client.
    RtoCheck { client: usize, acked_snapshot: u64 },
}

struct ClientState {
    flow: FlowId,
    load: LoadModel,
    msg_bytes: u64,
    tx_cores: u32,
    next_msg_id: u64,
    sender: TcpSender,
    kick_pending: bool,
    next_send_at: Time,
    /// True while an `RtoCheck` event is outstanding.
    rto_armed: bool,
}

struct SimFlow {
    transport: Transport,
    sock: usize,
    hash: u32,
    client: usize,
    next_wire_seq: u64,
    sent_byte_seq: u64,
    rx: TcpReceiver,
    /// Bytes delivered in order at `TcpRx` but not yet ACKed to the client.
    unacked_delivered: u64,
    max_seen_merge: Option<u64>,
    max_seen_transport: Option<u64>,
    delivered_bytes: u64,
}

/// Counters accumulated during the run.
struct Stats {
    delivered_bytes: u64,
    messages: u64,
    latency: mflow_metrics::LatencyHistogram,
    stack_latency: mflow_metrics::LatencyHistogram,
    sock_wait: mflow_metrics::LatencyHistogram,
    ooo_merge_input: u64,
    ooo_transport: u64,
    ipis: u64,
    delivered_series: Option<mflow_metrics::WindowedRate>,
    merge_invocations: u64,
    sock_push_fail_tcp: u64,
}

/// Installed merge hook.
pub struct MergeSetup {
    /// Stage the merger guards (skbs are reordered before entering it).
    pub before: Stage,
    pub merger: Box<dyn FlowMerger>,
    /// How the stateful TCP stage runs relative to this merge point.
    /// Under [`StatefulMode::StateComputeReplication`] the merger is
    /// bypassed for the TCP path: lanes advance replicated flow state and
    /// the receive-side machine reconciles their delivery records.
    pub stateful: StatefulMode,
}

/// Per-lane replicated flow state and its counters (SCR mode only).
#[derive(Default)]
struct ScrState {
    /// (flow, lane core) → that lane's replica of the flow state.
    replicas: BTreeMap<(FlowId, CoreId), FlowState>,
    /// Delivery records emitted by lane replicas.
    records: u64,
    /// Transitions suppressed lane-locally as already replicated.
    lane_dups: u64,
}

/// The simulated host.
pub struct StackSim {
    cfg: StackConfig,
    policy: Box<dyn PacketSteering>,
    merge: Option<MergeSetup>,
    cores: CoreSet,
    client_cores: CoreSet,
    rings: Vec<Option<RxRing>>,
    backlogs: Vec<Vec<VecDeque<Skb>>>,
    /// Total wire segments queued per core (rings + stage backlogs), kept
    /// incrementally for the policies' [`LoadView`].
    backlog_segs: Vec<u64>,
    /// Deepest backlog observed per core.
    backlog_watermark: Vec<u64>,
    backlog_rr: Vec<usize>,
    core_scheduled: Vec<bool>,
    /// True when the pending poll is a coalesced (idle-delay) one that an
    /// over-threshold arrival may upgrade to fire immediately.
    poll_coalesced: Vec<bool>,
    clients: Vec<ClientState>,
    flows: Vec<SimFlow>,
    socks: Vec<Socket>,
    link_free_at: Time,
    rng: Rng,
    /// Active fault-injection plan (merge-point perturbation).
    faults: Option<FaultPlan>,
    scr: ScrState,
    stats: Stats,
}

impl Default for Stats {
    fn default() -> Self {
        Self {
            delivered_bytes: 0,
            messages: 0,
            latency: mflow_metrics::LatencyHistogram::new(),
            stack_latency: mflow_metrics::LatencyHistogram::new(),
            sock_wait: mflow_metrics::LatencyHistogram::new(),
            ooo_merge_input: 0,
            ooo_transport: 0,
            ipis: 0,
            delivered_series: Some(mflow_metrics::WindowedRate::new(1_000_000)),
            merge_invocations: 0,
            sock_push_fail_tcp: 0,
        }
    }
}

impl StackSim {
    /// Builds a simulation; `merge` installs MFLOW's reassembly hook.
    /// Panics on a malformed [`StackConfig`]; prefer
    /// [`StackSim::try_new`] in fallible contexts.
    pub fn new(
        cfg: StackConfig,
        policy: Box<dyn PacketSteering>,
        merge: Option<MergeSetup>,
    ) -> Self {
        Self::try_new(cfg, policy, merge).expect("invalid StackConfig")
    }

    /// Builds a simulation, rejecting configurations that violate
    /// [`StackConfig::validate`].
    pub fn try_new(
        cfg: StackConfig,
        policy: Box<dyn PacketSteering>,
        merge: Option<MergeSetup>,
    ) -> Result<Self, MflowError> {
        cfg.validate()?;
        let n_cores = cfg.n_cores();
        let mut rng = Rng::new(cfg.seed);
        let mut flows = Vec::with_capacity(cfg.flows.len());
        let mut clients = Vec::with_capacity(cfg.flows.len());
        for (i, f) in cfg.flows.iter().enumerate() {
            // Give every flow a realistic distinct 5-tuple for hashing.
            let key = mflow_net::FlowKey {
                src_ip: [172, 17, 0, 2 + (i / 200) as u8],
                dst_ip: [172, 17, 0, 1],
                src_port: 40_000 + (i % 20_000) as u16,
                dst_port: 5201,
                proto: match f.transport {
                    Transport::Tcp => mflow_net::flow::Proto::Tcp,
                    Transport::Udp => mflow_net::flow::Proto::Udp,
                },
            };
            flows.push(SimFlow {
                transport: f.transport,
                sock: f.sock,
                hash: key.rss_hash(),
                client: i,
                next_wire_seq: 0,
                sent_byte_seq: 0,
                rx: TcpReceiver::new(),
                unacked_delivered: 0,
                max_seen_merge: None,
                max_seen_transport: None,
                delivered_bytes: 0,
            });
            let window = match f.load {
                LoadModel::Closed { window_bytes } => window_bytes,
                _ => u64::MAX,
            };
            clients.push(ClientState {
                flow: i,
                load: f.load,
                msg_bytes: f.msg_bytes,
                tx_cores: f.tx_cores,
                next_msg_id: 0,
                sender: TcpSender::new(window),
                kick_pending: false,
                next_send_at: 0,
                rto_armed: false,
            });
        }
        let socks = (0..cfg.n_socks)
            .map(|i| {
                Socket::new(
                    cfg.app_cores[i % cfg.app_cores.len()],
                    cfg.sock_capacity_bytes,
                )
            })
            .collect();
        let mut rings: Vec<Option<RxRing>> = (0..n_cores).map(|_| None).collect();
        for c in &cfg.kernel_cores {
            rings[*c] = Some(RxRing::new(cfg.ring_capacity));
        }
        let _ = rng.next_u64();
        let faults = cfg
            .faults
            .clone()
            .filter(|f| f.is_active())
            .map(FaultPlan::new);
        let mut cores = CoreSet::new(n_cores);
        if cfg.trace {
            cores.enable_trace();
        }
        Ok(Self {
            cores,
            client_cores: CoreSet::new(cfg.flows.len()),
            backlogs: (0..n_cores)
                .map(|_| (0..Stage::COUNT).map(|_| VecDeque::new()).collect())
                .collect(),
            backlog_segs: vec![0; n_cores],
            backlog_watermark: vec![0; n_cores],
            backlog_rr: vec![0; n_cores],
            core_scheduled: vec![false; n_cores],
            poll_coalesced: vec![false; n_cores],
            clients,
            flows,
            socks,
            link_free_at: 0,
            rng,
            faults,
            scr: ScrState::default(),
            cfg,
            policy,
            merge,
            rings,
            stats: Stats::default(),
        })
    }

    /// Convenience: builds, seeds initial events and runs to completion,
    /// returning the report. Panics on a malformed [`StackConfig`].
    #[deprecated(since = "0.2.0", note = "use `try_run` and handle the error")]
    pub fn run(
        cfg: StackConfig,
        policy: Box<dyn PacketSteering>,
        merge: Option<MergeSetup>,
    ) -> RunReport {
        Self::try_run(cfg, policy, merge).expect("invalid StackConfig")
    }

    /// Builds, seeds initial events and runs to completion; a malformed
    /// configuration is reported as [`MflowError::InvalidConfig`].
    pub fn try_run(
        cfg: StackConfig,
        policy: Box<dyn PacketSteering>,
        merge: Option<MergeSetup>,
    ) -> Result<RunReport, MflowError> {
        let duration = cfg.duration_ns;
        let mut engine = Engine::new();
        let mut sim = StackSim::try_new(cfg, policy, merge)?;
        for c in 0..sim.clients.len() {
            sim.clients[c].kick_pending = true;
            engine.schedule_at(0, Event::ClientKick { client: c });
        }
        if sim.cfg.noise.enabled {
            let cores: Vec<CoreId> = sim
                .cfg
                .kernel_cores
                .iter()
                .chain(sim.cfg.app_cores.iter())
                .copied()
                .collect();
            for core in cores {
                let at = sim.rng.exp(sim.cfg.noise.period_ns as f64) as u64;
                engine.schedule_at(at, Event::Interfere { core });
            }
        }
        engine.run_until(&mut sim, duration);
        let events = engine.events_processed();
        Ok(sim.into_report(duration, events))
    }

    fn in_window(&self, now: Time) -> bool {
        now >= self.cfg.warmup_ns
    }

    fn kick_core(&mut self, ctx: &mut Ctx<Event>, core: CoreId, delay: Time) {
        self.kick_core_coalesced(ctx, core, delay, false);
    }

    fn kick_core_coalesced(&mut self, ctx: &mut Ctx<Event>, core: CoreId, delay: Time, coalesced: bool) {
        if !self.core_scheduled[core] {
            self.core_scheduled[core] = true;
            self.poll_coalesced[core] = coalesced;
            ctx.schedule(delay, Event::CorePoll { core });
        } else if self.poll_coalesced[core] && delay == 0 {
            // Upgrade a coalesced (idle-delay) poll to fire now. The stale
            // delayed event is harmless: CorePoll with no work returns.
            self.poll_coalesced[core] = false;
            ctx.schedule(0, Event::CorePoll { core });
        }
    }

    /// True when the TCP merge point runs under state-compute replication.
    fn scr_active(&self) -> bool {
        self.merge.as_ref().is_some_and(|m| {
            m.stateful == StatefulMode::StateComputeReplication && m.before == Stage::TcpRx
        })
    }

    fn has_work(&self, core: CoreId) -> bool {
        if let Some(ring) = &self.rings[core] {
            if !ring.is_empty() {
                return true;
            }
        }
        self.backlogs[core].iter().any(|q| !q.is_empty())
    }

    // ---- client side -----------------------------------------------------

    fn client_kick(&mut self, ctx: &mut Ctx<Event>, client: usize) {
        self.clients[client].kick_pending = false;
        let now = ctx.now();
        let (msg_bytes, load) = {
            let c = &self.clients[client];
            (c.msg_bytes, c.load)
        };
        match load {
            LoadModel::Closed { .. } => {
                // Send whenever the window is not yet full (a message may
                // overshoot it slightly) — required for slow start, whose
                // initial congestion window is smaller than one large
                // message.
                if self.clients[client].sender.available_window() == 0 {
                    return; // the next ACK re-kicks us
                }
            }
            LoadModel::Paced { .. } => {
                let at = self.clients[client].next_send_at;
                if now < at {
                    self.clients[client].kick_pending = true;
                    ctx.schedule_at(at, Event::ClientKick { client });
                    return;
                }
            }
            LoadModel::Saturate => {}
        }
        let flow_id = self.clients[client].flow;
        let transport = self.flows[flow_id].transport;
        let msg_id = self.clients[client].next_msg_id;
        // After a retransmission timeout the generator resumes mid-message
        // at a segment boundary; normally this is a whole message.
        let msg_end_offset = (msg_id + 1) * msg_bytes;
        let payload_total = msg_end_offset - self.flows[flow_id].sent_byte_seq;
        let segs = payload_total.div_ceil(self.cfg.mtu_payload as u64).max(1);
        let tx_cores = self.clients[client].tx_cores;
        let cost = self
            .cfg
            .cost
            .sendmsg_cost_parallel_ns(transport, segs, payload_total, tx_cores);
        let (_, send_end) = self
            .client_cores
            .execute(client, now, cost, "sendmsg");
        let header = self.cfg.header_bytes(transport) as u64;
        self.clients[client].next_msg_id += 1;

        let mut t = self.link_free_at.max(send_end);
        let mut remaining = payload_total;
        for k in 0..segs {
            let payload = remaining.min(self.cfg.mtu_payload as u64).max(1);
            remaining = remaining.saturating_sub(payload);
            // 24 bytes of preamble + FCS + inter-frame gap per frame.
            t += wire_ns(payload + header + 24, self.cfg.cost.link_gbps);
            self.link_free_at = t;
            let arrival = t + self.cfg.cost.prop_delay_ns;
            let f = &mut self.flows[flow_id];
            let mut skb = Skb::new(
                f.next_wire_seq,
                flow_id,
                (payload + header) as u32,
                payload as u32,
                f.sent_byte_seq,
                arrival,
            );
            skb.hash = f.hash;
            f.next_wire_seq += 1;
            f.sent_byte_seq += payload;
            if k + 1 == segs {
                skb.msg_ends.push(MsgEnd {
                    msg_id,
                    send_ns: now,
                    msg_bytes,
                    msg_segs: segs as u32,
                });
            }
            ctx.schedule_at(arrival, Event::NicArrive { skb });
        }
        if let LoadModel::Closed { .. } = load {
            self.clients[client].sender.on_send(payload_total);
            if !self.clients[client].rto_armed {
                self.clients[client].rto_armed = true;
                let snapshot = self.clients[client].sender.acked_bytes;
                ctx.schedule(
                    self.cfg.tcp_rto_ns,
                    Event::RtoCheck {
                        client,
                        acked_snapshot: snapshot,
                    },
                );
            }
        }
        if let LoadModel::Paced { interval_ns } = load {
            // Real traffic generators never tick perfectly: +-10 % pacing
            // jitter keeps independently paced flows from phase-locking.
            let jittered = (interval_ns as f64
                * (0.9 + 0.2 * self.rng.f64()))
                .round() as u64;
            self.clients[client].next_send_at = self.clients[client]
                .next_send_at
                .max(now)
                .saturating_add(jittered.max(1));
        }
        // Schedule the next attempt.
        let next_at = match load {
            LoadModel::Closed { .. } => {
                if self.clients[client].sender.available_window() > 0 {
                    Some(send_end)
                } else {
                    None
                }
            }
            LoadModel::Paced { .. } => Some(send_end.max(self.clients[client].next_send_at)),
            LoadModel::Saturate => Some(send_end),
        };
        if let Some(at) = next_at {
            self.clients[client].kick_pending = true;
            ctx.schedule_at(at, Event::ClientKick { client });
        }
    }

    fn rto_check(&mut self, ctx: &mut Ctx<Event>, client: usize, acked_snapshot: u64) {
        let c = &mut self.clients[client];
        if c.sender.inflight == 0 {
            c.rto_armed = false;
            return;
        }
        if c.sender.acked_bytes == acked_snapshot {
            // No progress for a full RTO: collapse and resend from the
            // cumulative ACK (timeout recovery; the simulator models no
            // fast retransmit — holes only come from ring overruns).
            c.sender.on_timeout();
            let resume = c.sender.acked_bytes;
            c.next_msg_id = resume / c.msg_bytes;
            let flow = c.flow;
            self.flows[flow].sent_byte_seq = resume;
            if !self.clients[client].kick_pending {
                self.clients[client].kick_pending = true;
                ctx.schedule(0, Event::ClientKick { client });
            }
        }
        let snapshot = self.clients[client].sender.acked_bytes;
        ctx.schedule(
            self.cfg.tcp_rto_ns,
            Event::RtoCheck {
                client,
                acked_snapshot: snapshot,
            },
        );
    }

    fn ack_arrive(&mut self, ctx: &mut Ctx<Event>, client: usize, bytes: u64) {
        let now = ctx.now();
        self.client_cores
            .execute(client, now, self.cfg.cost.client_ack_rx as u64, "ack_rx");
        self.clients[client].sender.on_ack(bytes);
        if !self.clients[client].kick_pending {
            self.clients[client].kick_pending = true;
            ctx.schedule(0, Event::ClientKick { client });
        }
    }

    // ---- NIC / softirq side ----------------------------------------------

    fn nic_arrive(&mut self, ctx: &mut Ctx<Event>, skb: Skb) {
        let irq = self.policy.irq_core(skb.hash);
        let ring = self.rings[irq]
            .as_mut()
            .expect("policy steered to a core without a ring");
        let (accepted, depth) = {
            let accepted = ring.push(skb);
            (accepted, ring.len())
        };
        if accepted {
            self.backlog_segs[irq] += 1;
            self.backlog_watermark[irq] = self.backlog_watermark[irq].max(self.backlog_segs[irq]);
            // Interrupt coalescing: let shallow rings batch up so the poll
            // sees runs GRO can merge; deep rings (or busy cores, which
            // poll anyway) fire immediately.
            let busy = !self.cores.is_idle(irq, ctx.now());
            let deep = depth >= self.cfg.cost.irq_kick_threshold;
            if busy || deep {
                self.kick_core_coalesced(ctx, irq, 0, false);
            } else {
                let d = self.cfg.cost.irq_coalesce_ns;
                self.kick_core_coalesced(ctx, irq, d, true);
            }
        }
    }

    fn jitter_factor(&mut self) -> f64 {
        if self.cfg.noise.enabled && self.cfg.noise.cost_cv > 0.0 {
            self.rng.normal(1.0, self.cfg.noise.cost_cv).max(0.5)
        } else {
            1.0
        }
    }

    fn core_poll(&mut self, ctx: &mut Ctx<Event>, core: CoreId) {
        self.core_scheduled[core] = false;
        self.poll_coalesced[core] = false;
        let now = ctx.now();
        if !self.cores.is_idle(core, now) {
            let at = self.cores.free_at(core);
            self.kick_core(ctx, core, at - now);
            return;
        }
        // Round-robin over this core's NAPI instances (ring first when its
        // turn comes; index i means: i == DriverPoll slot reads the ring).
        let budget = self.cfg.cost.napi_budget;
        let start = self.backlog_rr[core];
        let mut chosen: Option<(Stage, Vec<Skb>)> = None;
        for off in 0..Stage::COUNT {
            let idx = (start + off) % Stage::COUNT;
            let stage = crate::stage::ALL_STAGES[idx];
            if stage == Stage::DriverPoll {
                if let Some(ring) = &mut self.rings[core] {
                    if !ring.is_empty() {
                        let batch = ring.poll(budget as usize);
                        self.backlog_segs[core] -=
                            batch.iter().map(|s| s.segs as u64).sum::<u64>();
                        self.backlog_rr[core] = (idx + 1) % Stage::COUNT;
                        chosen = Some((stage, batch));
                        break;
                    }
                }
                continue;
            }
            if !self.backlogs[core][idx].is_empty() {
                let mut batch = Vec::new();
                let mut segs = 0u64;
                while let Some(front) = self.backlogs[core][idx].front() {
                    if !batch.is_empty() && segs + front.segs as u64 > budget {
                        break;
                    }
                    let skb = self.backlogs[core][idx].pop_front().unwrap();
                    segs += skb.segs as u64;
                    batch.push(skb);
                }
                self.backlog_segs[core] -= segs;
                self.backlog_rr[core] = (idx + 1) % Stage::COUNT;
                chosen = Some((stage, batch));
                break;
            }
        }
        let Some((stage, batch)) = chosen else {
            return; // idle
        };
        let skbs = batch.len() as u64;
        let segs: u64 = batch.iter().map(|s| s.segs as u64).sum();
        let bytes: u64 = batch.iter().map(|s| s.payload_bytes as u64).sum();
        let migrated = batch
            .iter()
            .any(|s| s.last_core.is_some() && s.last_core != Some(core));
        let base = if stage == Stage::TcpRx && self.scr_active() {
            // Reconcile-only: the stateful work was already replicated on
            // the lane cores at the merge seam; what remains here is the
            // cheap watermark/dedup pass over the delivery records.
            (self.cfg.cost.scr_reconcile_per_skb * skbs as f64).round() as u64
        } else {
            self.cfg
                .cost
                .stage_cost_ns(stage, self.cfg.path, skbs, segs, bytes, migrated)
        };
        let cost = (base as f64 * self.jitter_factor()).round() as u64;
        let (_, end) = self.cores.execute(core, now, cost, stage.tag());
        self.core_scheduled[core] = true;
        ctx.schedule_at(end, Event::StageDone { core, stage, batch });
    }

    fn stage_done(&mut self, ctx: &mut Ctx<Event>, core: CoreId, stage: Stage, batch: Vec<Skb>) {
        let now = ctx.now();
        let batch = match stage {
            Stage::Gro => crate::gro::gro_merge(
                batch,
                self.cfg.cost.gro_max_segs,
                self.cfg.cost.gro_max_bytes,
            ),
            Stage::VxlanDecap => batch
                .into_iter()
                .map(|mut s| {
                    // Outer eth + ip + udp + vxlan stripped.
                    s.wire_bytes = s.wire_bytes.saturating_sub(50 * s.segs);
                    s
                })
                .collect(),
            Stage::TcpRx => {
                self.tcp_rx_done(ctx, core, batch);
                self.finish_core(ctx, core);
                return;
            }
            Stage::UdpRx => {
                self.udp_rx_done(ctx, core, batch);
                self.finish_core(ctx, core);
                return;
            }
            _ => batch,
        };
        // Group by next stage (flows of different transports can share a
        // backlog in multi-flow runs).
        let mut groups: Vec<(Stage, Vec<Skb>)> = Vec::with_capacity(1);
        for skb in batch {
            let transport = self.flows[skb.flow].transport;
            let next = stage
                .next(self.cfg.path, transport)
                .expect("terminal stages handled above");
            match groups.last_mut() {
                Some((s, v)) if *s == next => v.push(skb),
                _ => groups.push((next, vec![skb])),
            }
        }
        for (next, group) in groups {
            let segs: u64 = group.iter().map(|s| s.segs as u64).sum();
            let dcost = self.policy.dispatch_cost_ns(stage, next, segs);
            if dcost > 0 {
                self.cores
                    .execute(core, now, dcost, self.policy.dispatch_tag());
            }
            let loads = LoadView::new(&self.backlog_segs);
            let assignments = self.policy.dispatch(now, stage, next, core, group, loads);
            for (target, mut sub) in assignments {
                let mut replicate_here = false;
                if let Some(setup) = &mut self.merge {
                    if setup.before == next {
                        if let Some(plan) = &mut self.faults {
                            sub = plan.apply(sub);
                        }
                        // Out-of-order accounting at the merge input.
                        for skb in &sub {
                            let f = &mut self.flows[skb.flow];
                            if let Some(max) = f.max_seen_merge {
                                if skb.wire_seq < max {
                                    self.stats.ooo_merge_input += 1;
                                }
                            }
                            f.max_seen_merge = Some(
                                f.max_seen_merge
                                    .map_or(skb.wire_seq, |m| m.max(skb.wire_seq)),
                            );
                        }
                        if setup.stateful == StatefulMode::StateComputeReplication
                            && next == Stage::TcpRx
                        {
                            replicate_here = true;
                        } else {
                            let offered = sub.len() as u64;
                            sub = setup.merger.offer(sub);
                            let released = sub.len() as u64;
                            self.stats.merge_invocations += 1;
                            let mcost = setup.merger.merge_cost_ns(offered, released);
                            if mcost > 0 {
                                self.cores.execute(target, now, mcost, "mflow.merge");
                            }
                        }
                    }
                }
                if replicate_here {
                    // SCR: instead of buffering for wire order, this lane
                    // advances its replica of each flow's state and pays
                    // the stateful stage cost here, in parallel with the
                    // other lanes; only first-sighting records travel on
                    // to the reconciler at `target`.
                    let (skbs, segs, bytes) = sub.iter().fold((0u64, 0u64, 0u64), |a, s| {
                        (a.0 + 1, a.1 + s.segs as u64, a.2 + s.payload_bytes as u64)
                    });
                    let mut records = Vec::with_capacity(sub.len());
                    for skb in sub {
                        let rep = self.scr.replicas.entry((skb.flow, core)).or_default();
                        match rep.advance_replicated(skb) {
                            Some(r) => {
                                self.scr.records += 1;
                                records.push(r);
                            }
                            None => self.scr.lane_dups += 1,
                        }
                    }
                    let rcost = self
                        .cfg
                        .cost
                        .stage_cost_ns(Stage::TcpRx, self.cfg.path, skbs, segs, bytes, false);
                    if rcost > 0 {
                        self.cores.execute(core, now, rcost, "scr.replicate");
                    }
                    self.stats.merge_invocations += 1;
                    sub = records;
                }
                if sub.is_empty() {
                    continue;
                }
                for skb in &mut sub {
                    skb.last_core = Some(core);
                }
                self.backlog_segs[target] += sub.iter().map(|s| s.segs as u64).sum::<u64>();
                self.backlog_watermark[target] =
                    self.backlog_watermark[target].max(self.backlog_segs[target]);
                self.backlogs[target][next.index()].extend(sub);
                if target != core {
                    self.stats.ipis += 1;
                    self.cores
                        .execute(core, now, self.cfg.cost.ipi_send as u64, "ipi");
                    let latency = self.cfg.cost.ipi_latency as u64;
                    self.kick_core(ctx, target, latency);
                } else {
                    // Same-core continuation; the finish_core below re-kicks.
                }
            }
        }
        self.finish_core(ctx, core);
    }

    fn finish_core(&mut self, ctx: &mut Ctx<Event>, core: CoreId) {
        self.core_scheduled[core] = false;
        if self.has_work(core) {
            self.kick_core(ctx, core, 0);
        }
    }

    // ---- transport + application -----------------------------------------

    fn note_transport_order(&mut self, flow: FlowId, wire_seq: u64) {
        let f = &mut self.flows[flow];
        if let Some(max) = f.max_seen_transport {
            if wire_seq < max {
                self.stats.ooo_transport += 1;
            }
        }
        f.max_seen_transport = Some(f.max_seen_transport.map_or(wire_seq, |m| m.max(wire_seq)));
    }

    fn deliver_to_socket(&mut self, ctx: &mut Ctx<Event>, sock_idx: usize, item: SockItem) -> bool {
        let accepted = self.socks[sock_idx].push(item);
        if accepted && !self.socks[sock_idx].app_busy {
            self.socks[sock_idx].app_busy = true;
            let wake = self.cfg.cost.app_wake_ns;
            ctx.schedule(wake, Event::AppWake { sock: sock_idx });
        }
        accepted
    }

    fn tcp_rx_done(&mut self, ctx: &mut Ctx<Event>, core: CoreId, batch: Vec<Skb>) {
        let now = ctx.now();
        let scr = self.scr_active();
        for skb in batch {
            let flow_id = skb.flow;
            self.note_transport_order(flow_id, skb.wire_seq);
            let (deliverable, was_ooo) = self.flows[flow_id].rx.receive(skb);
            if was_ooo && !scr {
                // Under SCR the receive machine is the reconciler: parking
                // a record is its normal operation, already covered by the
                // per-record reconcile cost, not the kernel's expensive
                // ooo-queue insert.
                let c = self.cfg.cost.tcp_ooo_insert as u64;
                self.cores.execute(core, now, c, "tcp_rx.ooo");
            }
            for d in deliverable {
                let sock_idx = self.flows[flow_id].sock;
                let item = SockItem {
                    flow: flow_id,
                    payload_bytes: d.payload_bytes as u64,
                    segs: d.segs,
                    msg_ends: d.msg_ends,
                    enq_ns: now,
                };
                if !self.deliver_to_socket(ctx, sock_idx, item) {
                    // TCP data must never be dropped at the socket: the
                    // window bounds it below the buffer. Record loudly.
                    self.stats.sock_push_fail_tcp += 1;
                }
            }
        }
    }

    fn udp_rx_done(&mut self, ctx: &mut Ctx<Event>, _core: CoreId, mut batch: Vec<Skb>) {
        let now = ctx.now();
        // Late merge (device scaling): reorder before delivery to the app.
        if let Some(setup) = &mut self.merge {
            if setup.before == Stage::UserCopy {
                if let Some(plan) = &mut self.faults {
                    batch = plan.apply(batch);
                }
                for skb in &batch {
                    let f = &mut self.flows[skb.flow];
                    if let Some(max) = f.max_seen_merge {
                        if skb.wire_seq < max {
                            self.stats.ooo_merge_input += 1;
                        }
                    }
                    f.max_seen_merge =
                        Some(f.max_seen_merge.map_or(skb.wire_seq, |m| m.max(skb.wire_seq)));
                }
                let offered = batch.len() as u64;
                batch = setup.merger.offer(batch);
                let released = batch.len() as u64;
                self.stats.merge_invocations += 1;
                let mcost = setup.merger.merge_cost_ns(offered, released);
                if mcost > 0 {
                    // Charged to the consuming app core, as in udp_recvmsg.
                    let app = self.socks[0].app_core;
                    self.cores.execute(app, now, mcost, "mflow.merge");
                }
            }
        }
        for skb in batch {
            let flow_id = skb.flow;
            self.note_transport_order(flow_id, skb.wire_seq);
            let sock_idx = self.flows[flow_id].sock;
            let item = SockItem {
                flow: flow_id,
                payload_bytes: skb.payload_bytes as u64,
                segs: skb.segs,
                msg_ends: skb.msg_ends,
                enq_ns: now,
            };
            self.deliver_to_socket(ctx, sock_idx, item);
        }
    }

    fn app_wake(&mut self, ctx: &mut Ctx<Event>, sock: usize) {
        let now = ctx.now();
        let items = self.socks[sock].pop_batch(256 * 1024);
        if items.is_empty() {
            self.socks[sock].app_busy = false;
            return;
        }
        let skbs = items.len() as u64;
        let segs: u64 = items.iter().map(|i| i.segs as u64).sum();
        let bytes: u64 = items.iter().map(|i| i.payload_bytes).sum();
        let cost = self.cfg.cost.stage_cost_ns(
            Stage::UserCopy,
            self.cfg.path,
            skbs,
            segs,
            bytes,
            false,
        );
        let app_core = self.socks[sock].app_core;
        let (_, end) = self.cores.execute(app_core, now, cost, "user_copy");
        ctx.schedule_at(end, Event::CopyDone { sock, items });
    }

    fn copy_done(&mut self, ctx: &mut Ctx<Event>, sock: usize, items: Vec<SockItem>) {
        let now = ctx.now();
        let in_window = self.in_window(now);
        let app_core = self.socks[sock].app_core;
        // Per-flow ACK accumulation (TCP): ACK once per copy completion.
        for item in &items {
            let f = &mut self.flows[item.flow];
            f.delivered_bytes += item.payload_bytes;
            if let Some(series) = &mut self.stats.delivered_series {
                series.record(now, item.payload_bytes);
            }
            if in_window {
                self.stats.delivered_bytes += item.payload_bytes;
            }
            for end in &item.msg_ends {
                if in_window {
                    self.stats.messages += 1;
                    self.stats.latency.record(now.saturating_sub(end.send_ns));
                    self.stats
                        .stack_latency
                        .record(item.enq_ns.saturating_sub(end.send_ns));
                    self.stats.sock_wait.record(now.saturating_sub(item.enq_ns));
                }
            }
            if f.transport == Transport::Tcp {
                f.unacked_delivered += item.payload_bytes;
            }
        }
        // Send ACKs back (one per flow present in the batch).
        let mut acked: Vec<(usize, u64)> = Vec::new();
        for item in &items {
            let f = &mut self.flows[item.flow];
            if f.transport == Transport::Tcp && f.unacked_delivered > 0 {
                acked.push((f.client, f.unacked_delivered));
                f.unacked_delivered = 0;
            }
        }
        for (client, bytes) in acked {
            self.cores
                .execute(app_core, now, self.cfg.cost.tcp_ack_tx as u64, "tcp_ack");
            ctx.schedule(
                self.cfg.cost.prop_delay_ns,
                Event::AckArrive { client, bytes },
            );
        }
        if self.socks[sock].is_empty() {
            self.socks[sock].app_busy = false;
        } else {
            ctx.schedule(0, Event::AppWake { sock });
        }
    }

    fn interfere(&mut self, ctx: &mut Ctx<Event>, core: CoreId) {
        let now = ctx.now();
        let burst = self.rng.exp(self.cfg.noise.burst_ns as f64) as u64;
        self.cores.preempt(core, now, burst, "interference");
        let next = self.rng.exp(self.cfg.noise.period_ns as f64) as u64;
        ctx.schedule(burst + next.max(1), Event::Interfere { core });
        // The preemption may have pushed queued work; make sure the core
        // re-polls afterwards.
        if self.has_work(core) {
            self.kick_core(ctx, core, burst);
        }
    }

    /// Finalizes the run into a report.
    pub fn into_report(mut self, duration_ns: u64, events: u64) -> RunReport {
        let measured_ns = duration_ns.saturating_sub(self.cfg.warmup_ns).max(1);
        let ring_drops: u64 = self.rings.iter().flatten().map(|r| r.drops()).sum();
        let sock_drops: u64 = self.socks.iter().map(|s| s.drops()).sum();
        let tcp_ooo_inserts: u64 = self.flows.iter().map(|f| f.rx.ooo_inserts()).sum();
        let tcp_retransmits: u64 = self.clients.iter().map(|c| c.sender.retransmits).sum();
        let tcp_inversions: u64 = self.flows.iter().map(|f| f.rx.inversions()).sum();
        let fault_counts = self
            .faults
            .as_mut()
            .map(|p| {
                p.finish();
                p.counts()
            })
            .unwrap_or_default();
        let (merge_residue, merge_flushed, merge_late_drops, merge_dup_drops) = self
            .merge
            .as_mut()
            .map(|m| {
                let residue = m.merger.buffered();
                let _ = m.merger.drain();
                (
                    residue,
                    m.merger.flushed(),
                    m.merger.late_drops(),
                    m.merger.dup_drops(),
                )
            })
            .unwrap_or((0, 0, 0, 0));
        let (desplits, resplits) = self.policy.desplit_stats();
        let scr = self.scr_active();
        let stateful_mode = self
            .merge
            .as_ref()
            .map_or(StatefulMode::MergeBeforeTcp, |m| m.stateful);
        // Under SCR the receive machine doubles as the reconciler, so its
        // duplicate drops are reconciliation events, not wire anomalies.
        let scr_rx_dups: u64 = if scr {
            self.flows.iter().map(|f| f.rx.dups()).sum()
        } else {
            0
        };
        // The shared counter block every engine reports. The simulator
        // has no shedding, inline fallback or redispatch (those are
        // real-thread overload mechanisms), so those stay zero;
        // `lane_depths` carries the deepest per-core backlog watermark.
        let telemetry = Telemetry {
            policy: self.policy.name().to_string(),
            delivered: self.stats.messages,
            ooo: self.stats.ooo_merge_input,
            flushed: merge_flushed,
            late: merge_late_drops,
            dup: merge_dup_drops,
            shed: 0,
            inline: 0,
            desplits,
            resplits,
            redispatched: 0,
            fault_drops: fault_counts.drops,
            residue: merge_residue as u64,
            // The simulator has no thread supervision; the counters exist
            // only in the runtime engine.
            restarts: 0,
            heartbeat_misses: 0,
            recovery_ns: 0,
            merger_restarts: 0,
            merger_recovery_ns: 0,
            snapshot_bytes: 0,
            restore_replayed_offers: 0,
            stateful_mode: stateful_mode.name().to_string(),
            replicated_transitions: self.scr.records,
            reconciled_dups: self.scr.lane_dups + scr_rx_dups,
            // The simulator's dispatcher always parses before steering,
            // and packet memory is modelled, not pooled.
            dispatch_mode: "post-parse".to_string(),
            pool_recycled: 0,
            pool_misses: 0,
            lane_depths: self.backlog_watermark.clone(),
        };
        RunReport {
            telemetry,
            duration_ns,
            measured_ns,
            delivered_bytes: self.stats.delivered_bytes,
            goodput_gbps: self.stats.delivered_bytes as f64 * 8.0 / measured_ns as f64,
            msgs_per_sec: self.stats.messages as f64 * 1e9 / measured_ns as f64,
            latency: self.stats.latency,
            stack_latency: self.stats.stack_latency,
            sock_wait: self.stats.sock_wait,
            cpu: self.cores.cpu().clone(),
            client_cpu: self.client_cores.cpu().clone(),
            ring_drops,
            sock_drops,
            sock_push_fail_tcp: self.stats.sock_push_fail_tcp,
            ooo_transport: self.stats.ooo_transport,
            tcp_ooo_inserts,
            tcp_retransmits,
            tcp_inversions,
            ipis: self.stats.ipis,
            merge_invocations: self.stats.merge_invocations,
            fault_dups: fault_counts.dups,
            fault_delays: fault_counts.delays,
            delivered_series: self.stats.delivered_series.take().expect("series present"),
            trace: self.cores.trace().cloned(),
            per_flow_delivered: self.flows.iter().map(|f| f.delivered_bytes).collect(),
            events,
        }
    }
}

impl Model for StackSim {
    type Event = Event;

    fn handle(&mut self, ev: Event, ctx: &mut Ctx<Event>) {
        match ev {
            Event::ClientKick { client } => self.client_kick(ctx, client),
            Event::NicArrive { skb } => self.nic_arrive(ctx, skb),
            Event::CorePoll { core } => self.core_poll(ctx, core),
            Event::StageDone { core, stage, batch } => self.stage_done(ctx, core, stage, batch),
            Event::AckArrive { client, bytes } => self.ack_arrive(ctx, client, bytes),
            Event::AppWake { sock } => self.app_wake(ctx, sock),
            Event::CopyDone { sock, items } => self.copy_done(ctx, sock, items),
            Event::Interfere { core } => self.interfere(ctx, core),
            Event::RtoCheck {
                client,
                acked_snapshot,
            } => self.rto_check(ctx, client, acked_snapshot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlowSpec, NoiseConfig, StackConfig};
    use crate::cost::CostModel;
    use crate::policy::StayLocal;
    use crate::stage::PathKind;
    use mflow_sim::MS;

    fn quiet(mut cfg: StackConfig) -> StackConfig {
        cfg.noise = NoiseConfig::off();
        cfg.duration_ns = 20 * MS;
        cfg.warmup_ns = 5 * MS;
        cfg
    }

    #[test]
    fn vanilla_overlay_tcp_delivers_in_order_with_no_loss() {
        let cfg = quiet(StackConfig::single_flow(
            PathKind::Overlay,
            FlowSpec::tcp(65536, 0),
        ));
        let irq = cfg.kernel_cores[0];
        let report = StackSim::try_run(cfg, Box::new(StayLocal::new(irq)), None).expect("valid stack config");
        assert!(report.goodput_gbps > 1.0, "no useful throughput: {report:?}");
        assert_eq!(report.ring_drops, 0);
        assert_eq!(report.sock_push_fail_tcp, 0);
        assert_eq!(report.tcp_ooo_inserts, 0, "single core must stay in order");
        assert!(report.telemetry.delivered > 100);
    }

    #[test]
    fn vanilla_native_tcp_beats_vanilla_overlay() {
        let overlay = quiet(StackConfig::single_flow(
            PathKind::Overlay,
            FlowSpec::tcp(65536, 0),
        ));
        let native = quiet(StackConfig::single_flow(
            PathKind::Native,
            FlowSpec::tcp(65536, 0),
        ));
        let irq = overlay.kernel_cores[0];
        let r_overlay = StackSim::try_run(overlay, Box::new(StayLocal::new(irq)), None).expect("valid stack config");
        let r_native = StackSim::try_run(native, Box::new(StayLocal::new(irq)), None).expect("valid stack config");
        assert!(
            r_native.goodput_gbps > r_overlay.goodput_gbps * 1.2,
            "native {:.1} vs overlay {:.1}",
            r_native.goodput_gbps,
            r_overlay.goodput_gbps
        );
    }

    #[test]
    fn udp_overlay_is_far_below_native() {
        let mk = |path| {
            let mut cfg = quiet(StackConfig::single_flow(path, FlowSpec::udp(65536, 0)));
            // Three clients as in the paper.
            cfg.flows = vec![
                FlowSpec::udp(65536, 0),
                FlowSpec::udp(65536, 0),
                FlowSpec::udp(65536, 0),
            ];
            cfg
        };
        let irq = 1;
        let r_native = StackSim::try_run(mk(PathKind::Native), Box::new(StayLocal::new(irq)), None).expect("valid stack config");
        let r_overlay = StackSim::try_run(mk(PathKind::Overlay), Box::new(StayLocal::new(irq)), None).expect("valid stack config");
        let ratio = r_overlay.goodput_gbps / r_native.goodput_gbps;
        assert!(
            ratio < 0.45,
            "overlay UDP should collapse: ratio {ratio:.2} (native {:.1}, overlay {:.1})",
            r_native.goodput_gbps,
            r_overlay.goodput_gbps
        );
    }

    #[test]
    fn message_latency_is_recorded() {
        let mut cfg = quiet(StackConfig::single_flow(
            PathKind::Overlay,
            FlowSpec::tcp(4096, 0),
        ));
        cfg.flows[0].load = LoadModel::Paced { interval_ns: 50_000 };
        let report = StackSim::try_run(cfg, Box::new(StayLocal::new(1)), None).expect("valid stack config");
        assert!(report.latency.count() > 50);
        assert!(report.latency.median() > 1_000, "sub-microsecond latency is implausible");
        assert!(report.latency.p99() >= report.latency.median());
    }

    #[test]
    fn run_is_deterministic() {
        let mk = || {
            quiet(StackConfig::single_flow(
                PathKind::Overlay,
                FlowSpec::tcp(65536, 0),
            ))
        };
        let a = StackSim::try_run(mk(), Box::new(StayLocal::new(1)), None).expect("valid stack config");
        let b = StackSim::try_run(mk(), Box::new(StayLocal::new(1)), None).expect("valid stack config");
        assert_eq!(a.delivered_bytes, b.delivered_bytes);
        assert_eq!(a.telemetry.delivered, b.telemetry.delivered);
        assert_eq!(a.events, b.events);
        assert_eq!(a.latency.median(), b.latency.median());
    }

    #[test]
    fn saturating_udp_sheds_at_the_ring_without_stalling() {
        let mut cfg = quiet(StackConfig::single_flow(
            PathKind::Overlay,
            FlowSpec::udp(65536, 0),
        ));
        cfg.flows = vec![
            FlowSpec::udp(65536, 0),
            FlowSpec::udp(65536, 0),
            FlowSpec::udp(65536, 0),
        ];
        let report = StackSim::try_run(cfg, Box::new(StayLocal::new(1)), None).expect("valid stack config");
        assert!(report.ring_drops > 0, "three saturating clients must overrun one core");
        assert!(report.goodput_gbps > 0.5);
    }

    #[test]
    fn noise_perturbs_but_does_not_break() {
        let mut cfg = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));
        cfg.duration_ns = 20 * MS;
        cfg.warmup_ns = 5 * MS;
        assert!(cfg.noise.enabled);
        let report = StackSim::try_run(cfg, Box::new(StayLocal::new(1)), None).expect("valid stack config");
        assert!(report.goodput_gbps > 1.0);
        assert_eq!(report.tcp_ooo_inserts, 0);
        // Interference must show up in the CPU ledger.
        assert!(report.cpu.tag_total_ns("interference") > 0);
    }

    #[test]
    fn cpu_breakdown_attributes_overlay_devices() {
        let cfg = quiet(StackConfig::single_flow(
            PathKind::Overlay,
            FlowSpec::tcp(65536, 0),
        ));
        let report = StackSim::try_run(cfg, Box::new(StayLocal::new(1)), None).expect("valid stack config");
        for tag in [
            "pnic.poll",
            "pnic.skb_alloc",
            "pnic.gro",
            "vxlan.decap",
            "veth.xmit",
            "tcp_rx",
            "user_copy",
        ] {
            assert!(report.cpu.tag_total_ns(tag) > 0, "missing CPU time for {tag}");
        }
        // Everything but user_copy ran on core 1.
        assert!(report.cpu.busy_ns(1) > report.cpu.busy_ns(2));
    }

    #[test]
    fn tracing_captures_stage_execution() {
        let mut cfg = quiet(StackConfig::single_flow(
            PathKind::Overlay,
            FlowSpec::tcp(65536, 0),
        ));
        cfg.trace = true;
        let report = StackSim::try_run(cfg, Box::new(StayLocal::new(1)), None).expect("valid stack config");
        let trace = report.trace.expect("trace requested");
        assert!(!trace.spans().is_empty());
        let tags: std::collections::BTreeSet<&str> =
            trace.spans().iter().map(|s| s.tag.as_str()).collect();
        assert!(tags.contains("vxlan.decap"), "tags: {tags:?}");
        assert!(tags.contains("user_copy"));
        // Spans on one core never overlap.
        let mut last_end = 0;
        for s in trace.spans().iter().filter(|s| s.core == 1) {
            assert!(s.start >= last_end, "overlap at {}", s.start);
            last_end = s.end;
        }
    }

    #[test]
    fn tx_core_scaling_raises_a_sender_bound_flow() {
        // 1 KB UDP: a single client is sender-bound; two TX cores push
        // more datagrams through.
        let mk = |tx: u32| {
            let mut flow = FlowSpec::udp(1024, 0);
            flow.tx_cores = tx;
            quiet(StackConfig::single_flow(PathKind::Native, flow))
        };
        let one = StackSim::try_run(mk(1), Box::new(StayLocal::new(1)), None).expect("valid stack config");
        let two = StackSim::try_run(mk(2), Box::new(StayLocal::new(1)), None).expect("valid stack config");
        assert!(
            two.goodput_gbps > one.goodput_gbps * 1.1,
            "tx=2 {:.2} vs tx=1 {:.2}",
            two.goodput_gbps,
            one.goodput_gbps
        );
    }

    #[test]
    fn interrupt_coalescing_batches_shallow_rings() {
        // A lightly paced flow arrives one segment at a time; coalescing
        // must hold the IRQ so polls see multi-segment batches (visible as
        // a per-message latency floor near the coalescing delay).
        let mut cfg = quiet(StackConfig::single_flow(
            PathKind::Native,
            FlowSpec::tcp(1024, 0),
        ));
        cfg.flows[0].load = LoadModel::Paced { interval_ns: 100_000 };
        let r = StackSim::try_run(cfg, Box::new(StayLocal::new(1)), None).expect("valid stack config");
        let coalesce = CostModel::calibrated().irq_coalesce_ns;
        assert!(
            r.latency.median() >= coalesce,
            "median {} below the coalescing delay {}",
            r.latency.median(),
            coalesce
        );
    }

    #[test]
    fn small_messages_are_client_bound() {
        // 16-byte TCP messages: the client core saturates long before the
        // receiver does — all systems look alike (paper Fig 8a, 16 B).
        let cfg = quiet(StackConfig::single_flow(
            PathKind::Overlay,
            FlowSpec::tcp(16, 0),
        ));
        let report = StackSim::try_run(cfg, Box::new(StayLocal::new(1)), None).expect("valid stack config");
        let client_busy = report.client_cpu.busy_ns(0);
        let kernel_busy = report.cpu.busy_ns(1);
        assert!(
            client_busy > kernel_busy,
            "client {client_busy} should out-busy kernel {kernel_busy}"
        );
    }
}
