//! The result of one simulation run.

use mflow_metrics::{CpuAccounting, LatencyHistogram, Telemetry, WindowedRate};
use mflow_sim::Trace;

/// Everything a bench harness or test needs from one run.
#[derive(Debug)]
pub struct RunReport {
    /// The shared cross-engine counter block (policy name, delivered
    /// messages, merge disturbance, flush recovery, de-split activity).
    /// `lane_depths` here carries the deepest backlog (wire segments)
    /// observed per core. The engine-specific fields below extend it.
    pub telemetry: Telemetry,
    /// Total simulated time.
    pub duration_ns: u64,
    /// Post-warmup measurement window.
    pub measured_ns: u64,
    /// Payload bytes copied to user space in the window.
    pub delivered_bytes: u64,
    /// Goodput in Gbit/s over the window.
    pub goodput_gbps: f64,
    /// Message completion rate.
    pub msgs_per_sec: f64,
    /// End-to-end message latency (sendmsg start → user-space copy done).
    pub latency: LatencyHistogram,
    /// Kernel-path portion: sendmsg start → socket enqueue.
    pub stack_latency: LatencyHistogram,
    /// Socket portion: enqueue → copy completion.
    pub sock_wait: LatencyHistogram,
    /// Receiver-host CPU ledger (kernel + app cores).
    pub cpu: CpuAccounting,
    /// Client-machine CPU ledger.
    pub client_cpu: CpuAccounting,
    /// Frames dropped at full NIC rings.
    pub ring_drops: u64,
    /// Datagrams dropped at full socket buffers.
    pub sock_drops: u64,
    /// TCP socket pushes that failed — must stay zero (window-bounded).
    pub sock_push_fail_tcp: u64,
    /// Arrival-order inversions observed entering the transport stage.
    pub ooo_transport: u64,
    /// Skbs that took TCP's expensive per-packet out-of-order path.
    pub tcp_ooo_inserts: u64,
    /// TCP retransmission timeouts taken by the senders.
    pub tcp_retransmits: u64,
    /// Wire-order inversions seen inside the TCP receiver.
    pub tcp_inversions: u64,
    /// Inter-processor interrupts sent.
    pub ipis: u64,
    /// Merge-hook invocations.
    pub merge_invocations: u64,
    /// Duplicate skbs injected by the fault injector.
    pub fault_dups: u64,
    /// Skbs the fault injector delivered late.
    pub fault_delays: u64,
    /// Delivered bytes per 1 ms window over the whole run — for
    /// convergence checks and throughput-over-time plots.
    pub delivered_series: WindowedRate,
    /// Per-core execution trace (when `StackConfig::trace` was set).
    pub trace: Option<Trace>,
    /// Per-flow delivered payload bytes (whole run).
    pub per_flow_delivered: Vec<u64>,
    /// Engine events processed.
    pub events: u64,
}

impl RunReport {
    /// Coefficient of variation of per-millisecond throughput inside the
    /// measurement window: small values mean the run reached steady state
    /// before measurement began.
    pub fn steady_state_cv(&self) -> f64 {
        let from = (self.duration_ns - self.measured_ns) / self.delivered_series.window_ns();
        let to = self.duration_ns / self.delivered_series.window_ns();
        self.delivered_series.stability_cv(from as usize, to as usize)
    }

    /// Per-core utilization (percent of the full run) over `cores`.
    pub fn core_utilization(&self, cores: &[usize]) -> Vec<f64> {
        cores
            .iter()
            .map(|&c| self.cpu.utilization_pct(c, self.duration_ns))
            .collect()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<12} {:>7.2} Gbps  {:>9.0} msg/s  p50={:>7.1}us p99={:>7.1}us  drops(ring={}, sock={})",
            self.telemetry.policy,
            self.goodput_gbps,
            self.msgs_per_sec,
            self.latency.median() as f64 / 1e3,
            self.latency.p99() as f64 / 1e3,
            self.ring_drops,
            self.sock_drops,
        )
    }
}
