//! Steering interfaces: how batches move between stages and cores.
//!
//! The netstack defines the *mechanism* interfaces; the `mflow-steering`
//! crate implements the baselines (vanilla, RSS, RPS, FALCON) and the
//! `mflow` crate implements the paper's contribution on top of them.

use mflow_sim::{CoreId, Time};

use crate::skb::Skb;
use crate::stage::Stage;

/// A read-only view of current per-core queue depths, offered to policies
/// at dispatch time (the kernel equivalent: a splitting function can read
/// the depth of each per-core splitting queue before enqueueing).
#[derive(Clone, Copy, Debug)]
pub struct LoadView<'a> {
    backlog_segs: &'a [u64],
}

impl<'a> LoadView<'a> {
    /// Wraps a per-core backlog-segment count slice.
    pub fn new(backlog_segs: &'a [u64]) -> Self {
        Self { backlog_segs }
    }

    /// Queued wire segments currently waiting on `core`.
    pub fn backlog_segs(&self, core: CoreId) -> u64 {
        self.backlog_segs.get(core).copied().unwrap_or(0)
    }

    /// The least-loaded core among `candidates` (ties: first listed).
    pub fn least_loaded(&self, candidates: &[CoreId]) -> CoreId {
        *candidates
            .iter()
            .min_by_key(|&&c| self.backlog_segs(c))
            .expect("candidates must be non-empty")
    }
}

/// A steering policy decides, at every stage transition, which core each
/// skb (or sub-batch) continues on, and may split a batch across cores.
pub trait PacketSteering {
    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Core whose ring buffer / first softirq receives frames of the flow
    /// with this RSS hash (the NIC's RSS indirection). Takes `&mut self`
    /// so policies may assign flows to queues on first sight, the way a
    /// driver programs its indirection table.
    fn irq_core(&mut self, hash: u32) -> CoreId;

    /// Distributes a batch leaving `from` toward `to` into per-core
    /// sub-batches, preserving relative order within each sub-batch.
    ///
    /// `cur` is the core that executed `from`. The returned sub-batches are
    /// enqueued in the given order.
    fn dispatch(
        &mut self,
        now: Time,
        from: Stage,
        to: Stage,
        cur: CoreId,
        batch: Vec<Skb>,
        loads: LoadView<'_>,
    ) -> Vec<(CoreId, Vec<Skb>)>;

    /// Extra steering cost charged to the source core for dispatching
    /// `segs` segments from `from` toward `to` (MFLOW's splitting
    /// bookkeeping; zero for the baselines beyond what stage costs already
    /// include).
    fn dispatch_cost_ns(&self, _from: Stage, _to: Stage, _segs: u64) -> u64 {
        0
    }

    /// Tag under which dispatch cost is charged.
    fn dispatch_tag(&self) -> &'static str {
        "steering"
    }

    /// Lifetime (de-splits, re-splits): flows demoted to unsplit
    /// processing because their lanes stayed above the occupancy high
    /// watermark, and flows re-promoted after pressure cleared. Zero for
    /// policies without overload feedback.
    fn desplit_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// A flow merger enforces original flow order over micro-flow-tagged skbs
/// at a merge point (before `TcpRx` or before `UserCopy`).
pub trait FlowMerger {
    /// Offers skbs arriving at the merge point; returns the skbs that are
    /// now in order and may proceed. Skbs of flows that were never split
    /// must pass through unchanged.
    fn offer(&mut self, skbs: Vec<Skb>) -> Vec<Skb>;

    /// Number of skbs currently buffered waiting for their turn.
    fn buffered(&self) -> usize;

    /// Cost charged to the consuming core per merge invocation that
    /// released `released` skbs out of `offered` offered.
    fn merge_cost_ns(&self, offered: u64, released: u64) -> u64;

    /// Buffered skbs that will never be released (end-of-run accounting);
    /// draining them lets reports detect stuck merges.
    fn drain(&mut self) -> Vec<Skb>;

    /// Micro-flows the merger gave up waiting for and skipped past
    /// (flush-deadline recovery). Zero for mergers without a deadline.
    fn flushed(&self) -> u64 {
        0
    }

    /// Skbs dropped because they arrived after the merger had already
    /// passed their micro-flow.
    fn late_drops(&self) -> u64 {
        0
    }

    /// Skbs dropped as duplicate copies of a known micro-flow.
    fn dup_drops(&self) -> u64 {
        0
    }

    /// Force-releases parked skbs by skipping every stuck micro-flow
    /// (end-of-stream recovery). Returned skbs are in released order.
    /// Mergers without flush support release nothing.
    fn flush_stalled(&mut self) -> Vec<Skb> {
        Vec::new()
    }
}

/// The simplest steering: everything stays on the core it is already on —
/// i.e. the vanilla kernel behaviour of running a flow's entire receive
/// pipeline on the RSS-chosen core.
#[derive(Clone, Debug)]
pub struct StayLocal {
    irq: CoreId,
}

impl StayLocal {
    /// All flows IRQ onto `irq` and never migrate (the paper's single-flow
    /// vanilla configuration with pinned IRQ affinity).
    pub fn new(irq: CoreId) -> Self {
        Self { irq }
    }
}

impl PacketSteering for StayLocal {
    fn name(&self) -> &'static str {
        "stay-local"
    }

    fn irq_core(&mut self, _hash: u32) -> CoreId {
        self.irq
    }

    fn dispatch(
        &mut self,
        _now: Time,
        _from: Stage,
        _to: Stage,
        cur: CoreId,
        batch: Vec<Skb>,
        _loads: LoadView<'_>,
    ) -> Vec<(CoreId, Vec<Skb>)> {
        vec![(cur, batch)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skb(seq: u64) -> Skb {
        Skb::new(seq, 0, 1514, 1448, seq * 1448, 0)
    }

    #[test]
    fn stay_local_never_migrates() {
        let mut p = StayLocal::new(3);
        let h = 0xDEAD;
        assert_eq!(p.irq_core(h), 3);
        let loads = [0u64; 8];
        let out = p.dispatch(0, Stage::SkbAlloc, Stage::Gro, 5, vec![skb(0), skb(1)], LoadView::new(&loads));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 5);
        assert_eq!(out[0].1.len(), 2);
    }

    #[test]
    fn stay_local_has_no_dispatch_cost() {
        let p = StayLocal::new(0);
        assert_eq!(p.dispatch_cost_ns(Stage::DriverPoll, Stage::SkbAlloc, 64), 0);
    }
}
