//! Property-based invariants of the netstack's data-plane primitives:
//! GRO conserves segments and bytes; the TCP receiver delivers every byte
//! exactly once, in order, under arbitrary arrival permutations.

use mflow_netstack::gro::gro_merge;
use mflow_netstack::tcp::TcpReceiver;
use mflow_netstack::Skb;
use proptest::prelude::*;

fn seg(seq: u64, flow: usize, byte_seq: u64, len: u32) -> Skb {
    Skb::new(seq, flow, len + 66, len, byte_seq, 0)
}

proptest! {
    #[test]
    fn gro_conserves_segments_and_bytes(
        lens in prop::collection::vec(1u32..2000, 1..200),
        flows in prop::collection::vec(0usize..3, 1..200),
        max_segs in 1u32..64,
        max_bytes in 1000u32..100_000,
    ) {
        // Build per-flow contiguous streams interleaved by the flows vec.
        let mut offsets = [0u64; 3];
        let mut batch = Vec::new();
        for (i, len) in lens.iter().enumerate() {
            let flow = flows[i % flows.len()];
            batch.push(seg(i as u64, flow, offsets[flow], *len));
            offsets[flow] += *len as u64;
        }
        let in_segs: u64 = batch.iter().map(|s| s.segs as u64).sum();
        let in_bytes: u64 = batch.iter().map(|s| s.payload_bytes as u64).sum();
        let merged = gro_merge(batch, max_segs, max_bytes);
        let out_segs: u64 = merged.iter().map(|s| s.segs as u64).sum();
        let out_bytes: u64 = merged.iter().map(|s| s.payload_bytes as u64).sum();
        prop_assert_eq!(in_segs, out_segs, "GRO lost or invented segments");
        prop_assert_eq!(in_bytes, out_bytes, "GRO lost or invented bytes");
        for s in &merged {
            prop_assert!(s.segs <= max_segs);
            prop_assert!(s.payload_bytes <= max_bytes.max(2000));
        }
        // Per-flow byte ranges stay contiguous and ordered.
        let mut next = [0u64; 3];
        for s in &merged {
            prop_assert_eq!(s.byte_seq, next[s.flow], "flow {} out of order", s.flow);
            next[s.flow] = s.byte_end();
        }
    }

    #[test]
    fn tcp_receiver_delivers_every_byte_once_in_order(
        n in 1usize..150,
        order_seed in any::<u64>(),
    ) {
        // A contiguous stream of n MTU segments, offered in a random
        // permutation.
        let mut segs: Vec<Skb> = (0..n as u64).map(|i| seg(i, 0, i * 1448, 1448)).collect();
        let mut s = order_seed | 1;
        for i in (1..segs.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            segs.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut rx = TcpReceiver::new();
        let mut delivered = Vec::new();
        for skb in segs {
            let (out, _) = rx.receive(skb);
            delivered.extend(out.into_iter().map(|s| s.byte_seq));
        }
        let expect: Vec<u64> = (0..n as u64).map(|i| i * 1448).collect();
        prop_assert_eq!(delivered, expect);
        prop_assert_eq!(rx.ooo_len(), 0);
        prop_assert_eq!(rx.expected(), n as u64 * 1448);
    }

    #[test]
    fn tcp_receiver_discards_all_duplicates(
        n in 2usize..80,
        dup_count in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut rx = TcpReceiver::new();
        let mut total = 0usize;
        for i in 0..n as u64 {
            let (out, _) = rx.receive(seg(i, 0, i * 1448, 1448));
            total += out.len();
        }
        // Replay random old segments: all must be dropped as duplicates.
        let mut s = seed | 1;
        for _ in 0..dup_count {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (s >> 33) % n as u64;
            let (out, ooo) = rx.receive(seg(1000 + i, 0, i * 1448, 1448));
            prop_assert!(out.is_empty());
            prop_assert!(!ooo);
        }
        prop_assert_eq!(total, n);
        prop_assert_eq!(rx.dups(), dup_count as u64);
    }
}
