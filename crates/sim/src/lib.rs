//! `mflow-sim` — a deterministic discrete-event simulator of a multi-core
//! host: virtual-time engine, CPU cores with busy accounting and per-core
//! speed jitter, and a from-scratch deterministic PRNG.
//!
//! The network-stack model (`mflow-netstack`) runs on top of this engine.
//! Nothing here knows about packets; the engine is generic over the model's
//! event type so it is reusable and independently testable.
//!
//! # Determinism
//!
//! Two runs with the same model, seed and parameters produce bit-identical
//! results: the event queue breaks time ties by insertion sequence number
//! and all randomness flows from [`rng::Rng`] seeds.

pub mod core;
pub mod engine;
pub mod rng;
pub mod time;
pub mod trace;

pub use crate::core::{CoreId, CoreSet};
pub use engine::{Ctx, Engine, Model};
pub use rng::Rng;
pub use time::{Duration, Time, GBPS, MS, NS_PER_SEC, US};
pub use trace::{Span, Trace};
