//! Optional execution tracing: every interval a core spends busy, with its
//! tag, for timeline inspection and an ASCII Gantt rendering.
//!
//! Tracing is off by default (the hot loop only pays an `Option` check);
//! enable it on a [`crate::CoreSet`] with `enable_trace()` before running.

use crate::time::Time;

/// One busy interval of one core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    pub core: usize,
    pub start: Time,
    pub end: Time,
    pub tag: String,
}

/// A recorded execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// Records one span.
    pub fn push(&mut self, core: usize, start: Time, end: Time, tag: &str) {
        if end > start {
            self.spans.push(Span {
                core,
                start,
                end,
                tag: tag.to_string(),
            });
        }
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans overlapping `[from, to)`.
    pub fn window(&self, from: Time, to: Time) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.end > from && s.start < to)
    }

    /// Renders an ASCII Gantt chart of `[from, to)` across `n_cores` rows,
    /// `width` characters wide. Each cell shows the first letter of the tag
    /// that dominates that time slice ('.' = idle).
    pub fn render_gantt(&self, n_cores: usize, from: Time, to: Time, width: usize) -> String {
        assert!(to > from && width > 0);
        let slice = (to - from) as f64 / width as f64;
        let mut out = String::new();
        for core in 0..n_cores {
            let mut row = vec!['.'; width];
            let mut occupancy = vec![0.0f64; width];
            for s in self.window(from, to).filter(|s| s.core == core) {
                let s0 = s.start.max(from);
                let s1 = s.end.min(to);
                let c0 = ((s0 - from) as f64 / slice) as usize;
                let c1 = (((s1 - from) as f64 / slice).ceil() as usize).min(width);
                let letter = s.tag.chars().next().unwrap_or('?');
                for (i, cell) in row.iter_mut().enumerate().take(c1).skip(c0) {
                    // The slice keeps the tag that covers most of it.
                    let cell_start = from + (i as f64 * slice) as Time;
                    let cell_end = from + ((i + 1) as f64 * slice) as Time;
                    let overlap =
                        (s1.min(cell_end).saturating_sub(s0.max(cell_start))) as f64;
                    if overlap > occupancy[i] {
                        occupancy[i] = overlap;
                        *cell = letter;
                    }
                }
            }
            out.push_str(&format!("core {core:>2} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out
    }

    /// Total busy time per tag, for quick summaries.
    pub fn totals_by_tag(&self) -> Vec<(String, Time)> {
        let mut map = std::collections::BTreeMap::new();
        for s in &self.spans {
            *map.entry(s.tag.clone()).or_insert(0) += s.end - s.start;
        }
        map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_ignores_empty_spans() {
        let mut t = Trace::default();
        t.push(0, 10, 10, "x");
        assert!(t.spans().is_empty());
        t.push(0, 10, 20, "x");
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn window_filters_by_overlap() {
        let mut t = Trace::default();
        t.push(0, 0, 10, "a");
        t.push(0, 20, 30, "b");
        t.push(0, 40, 50, "c");
        let hits: Vec<&str> = t.window(5, 25).map(|s| s.tag.as_str()).collect();
        assert_eq!(hits, vec!["a", "b"]);
    }

    #[test]
    fn gantt_shows_tags_and_idle() {
        let mut t = Trace::default();
        t.push(0, 0, 50, "alloc");
        t.push(1, 50, 100, "vxlan");
        let g = t.render_gantt(2, 0, 100, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("aaaaa"), "{g}");
        assert!(lines[0].contains("....."), "{g}");
        assert!(lines[1].contains("vvvvv"), "{g}");
    }

    #[test]
    fn totals_accumulate_per_tag() {
        let mut t = Trace::default();
        t.push(0, 0, 10, "x");
        t.push(1, 5, 25, "x");
        t.push(0, 30, 31, "y");
        let totals = t.totals_by_tag();
        assert_eq!(totals, vec![("x".to_string(), 30), ("y".to_string(), 1)]);
    }
}
