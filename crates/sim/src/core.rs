//! CPU cores as simulated resources: each core executes one context at a
//! time; busy time is attributed to a tag (softirq / device / thread name)
//! for the paper's CPU-utilization breakdowns.

use mflow_metrics::CpuAccounting;

use crate::time::Time;
use crate::trace::Trace;

/// Index of a simulated CPU core.
pub type CoreId = usize;

/// A set of cores with per-core availability, speed factors and a busy-time
/// ledger.
#[derive(Clone, Debug)]
pub struct CoreSet {
    free_at: Vec<Time>,
    speed: Vec<f64>,
    cpu: CpuAccounting,
    trace: Option<Trace>,
}

impl CoreSet {
    /// Creates `n` idle cores of nominal speed.
    pub fn new(n: usize) -> Self {
        Self {
            free_at: vec![0; n],
            speed: vec![1.0; n],
            cpu: CpuAccounting::new(n),
            trace: None,
        }
    }

    /// Turns on execution tracing (records every busy interval).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::default());
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// True when the set has no cores.
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }

    /// Sets a static speed multiplier for a core (`2.0` = twice as fast).
    pub fn set_speed(&mut self, core: CoreId, speed: f64) {
        assert!(speed > 0.0, "core speed must be positive");
        self.speed[core] = speed;
    }

    /// Earliest time the core can start new work.
    pub fn free_at(&self, core: CoreId) -> Time {
        self.free_at[core]
    }

    /// True if the core is idle at `now`.
    pub fn is_idle(&self, core: CoreId, now: Time) -> bool {
        self.free_at[core] <= now
    }

    /// Runs `cost_ns` of nominal work on `core`, starting no earlier than
    /// `now`, attributing the busy time to `tag`. Returns `(start, end)`.
    pub fn execute(&mut self, core: CoreId, now: Time, cost_ns: u64, tag: &str) -> (Time, Time) {
        let start = self.free_at[core].max(now);
        let scaled = (cost_ns as f64 / self.speed[core]).round() as u64;
        let end = start + scaled;
        self.free_at[core] = end;
        self.cpu.charge(core, tag, scaled);
        if let Some(trace) = &mut self.trace {
            trace.push(core, start, end, tag);
        }
        (start, end)
    }

    /// Blocks the core with non-work time (e.g. background interference)
    /// charged to `tag`.
    pub fn preempt(&mut self, core: CoreId, now: Time, ns: u64, tag: &str) -> (Time, Time) {
        let start = self.free_at[core].max(now);
        let end = start + ns;
        self.free_at[core] = end;
        self.cpu.charge(core, tag, ns);
        if let Some(trace) = &mut self.trace {
            trace.push(core, start, end, tag);
        }
        (start, end)
    }

    /// Read-only view of the busy ledger.
    pub fn cpu(&self) -> &CpuAccounting {
        &self.cpu
    }

    /// Consumes the set, returning the ledger.
    pub fn into_cpu(self) -> CpuAccounting {
        self.cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_serializes_on_one_core() {
        let mut cores = CoreSet::new(2);
        let (s1, e1) = cores.execute(0, 100, 50, "a");
        assert_eq!((s1, e1), (100, 150));
        // Second job on the same core queues behind the first.
        let (s2, e2) = cores.execute(0, 100, 50, "a");
        assert_eq!((s2, e2), (150, 200));
        // A different core is independent.
        let (s3, e3) = cores.execute(1, 100, 50, "a");
        assert_eq!((s3, e3), (100, 150));
    }

    #[test]
    fn speed_scales_cost() {
        let mut cores = CoreSet::new(1);
        cores.set_speed(0, 2.0);
        let (_, end) = cores.execute(0, 0, 100, "x");
        assert_eq!(end, 50);
    }

    #[test]
    fn busy_time_is_attributed() {
        let mut cores = CoreSet::new(1);
        cores.execute(0, 0, 30, "vxlan");
        cores.execute(0, 0, 20, "bridge");
        assert_eq!(cores.cpu().busy_ns_tag(0, "vxlan"), 30);
        assert_eq!(cores.cpu().busy_ns_tag(0, "bridge"), 20);
        assert_eq!(cores.cpu().busy_ns(0), 50);
    }

    #[test]
    fn idleness_reflects_free_at() {
        let mut cores = CoreSet::new(1);
        assert!(cores.is_idle(0, 0));
        cores.execute(0, 0, 100, "x");
        assert!(!cores.is_idle(0, 50));
        assert!(cores.is_idle(0, 100));
    }

    #[test]
    fn trace_records_executions_when_enabled() {
        let mut cores = CoreSet::new(2);
        assert!(cores.trace().is_none());
        cores.enable_trace();
        cores.execute(0, 0, 10, "alloc");
        cores.execute(1, 5, 20, "vxlan");
        let spans = cores.trace().unwrap().spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].tag, "alloc");
        assert_eq!(spans[1].core, 1);
    }

    #[test]
    fn preempt_blocks_without_speed_scaling() {
        let mut cores = CoreSet::new(1);
        cores.set_speed(0, 2.0);
        let (_, end) = cores.preempt(0, 0, 100, "irq");
        assert_eq!(end, 100); // preemption time is wall time, not scaled
        assert_eq!(cores.cpu().busy_ns_tag(0, "irq"), 100);
    }
}
