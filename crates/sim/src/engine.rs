//! The discrete-event engine: a time-ordered event queue driving a user
//! model. Ties in time are broken by insertion order, which makes runs
//! bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// A simulation model: owns all world state and reacts to events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handles one event at `ctx.now()`, possibly scheduling more.
    fn handle(&mut self, ev: Self::Event, ctx: &mut Ctx<Self::Event>);
}

struct Scheduled<E> {
    at: Time,
    seq: u64,
    ev: E,
}

// Order by (time, seq) — BinaryHeap is a max-heap, so wrap in Reverse at use.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Scheduling context handed to [`Model::handle`].
pub struct Ctx<E> {
    now: Time,
    seq: u64,
    pending: Vec<(Time, E)>,
    stop: bool,
}

impl<E> Ctx<E> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `ev` to fire `delay` nanoseconds from now.
    pub fn schedule(&mut self, delay: Time, ev: E) {
        self.pending.push((self.now + delay, ev));
    }

    /// Schedules `ev` at an absolute time (clamped to now if in the past).
    pub fn schedule_at(&mut self, at: Time, ev: E) {
        self.pending.push((at.max(self.now), ev));
    }

    /// Requests the engine to stop after this event.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// The event loop. Owns the queue and the clock; the model owns the world.
pub struct Engine<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: Time,
    events_processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            events_processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedules an event at absolute time `at` (clamped to `now`).
    pub fn schedule_at(&mut self, at: Time, ev: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            ev,
        }));
        self.seq += 1;
    }

    /// Schedules an event `delay` ns from the current time.
    pub fn schedule(&mut self, delay: Time, ev: E) {
        self.schedule_at(self.now + delay, ev);
    }

    /// Runs until the queue empties, the model stops, or `deadline` is
    /// reached (events strictly after `deadline` stay queued). Returns the
    /// final time.
    pub fn run_until<M: Model<Event = E>>(&mut self, model: &mut M, deadline: Time) -> Time {
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > deadline {
                self.now = deadline;
                break;
            }
            let Reverse(sched) = self.heap.pop().unwrap();
            self.now = sched.at;
            let mut ctx = Ctx {
                now: self.now,
                seq: self.seq,
                pending: Vec::new(),
                stop: false,
            };
            model.handle(sched.ev, &mut ctx);
            self.seq = ctx.seq;
            for (at, ev) in ctx.pending {
                self.schedule_at(at, ev);
            }
            self.events_processed += 1;
            if ctx.stop {
                break;
            }
        }
        self.now
    }

    /// Runs until the queue is empty or the model stops.
    pub fn run<M: Model<Event = E>>(&mut self, model: &mut M) -> Time {
        self.run_until(model, Time::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(Time, u32)>,
        chain: bool,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, ev: u32, ctx: &mut Ctx<u32>) {
            self.seen.push((ctx.now(), ev));
            if self.chain && ev < 5 {
                ctx.schedule(10, ev + 1);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule_at(30, 3);
        eng.schedule_at(10, 1);
        eng.schedule_at(20, 2);
        let mut m = Recorder {
            seen: vec![],
            chain: false,
        };
        eng.run(&mut m);
        assert_eq!(m.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut eng = Engine::new();
        eng.schedule_at(5, 100);
        eng.schedule_at(5, 200);
        eng.schedule_at(5, 300);
        let mut m = Recorder {
            seen: vec![],
            chain: false,
        };
        eng.run(&mut m);
        let evs: Vec<u32> = m.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![100, 200, 300]);
    }

    #[test]
    fn handlers_can_schedule_more() {
        let mut eng = Engine::new();
        eng.schedule_at(0, 1);
        let mut m = Recorder {
            seen: vec![],
            chain: true,
        };
        let end = eng.run(&mut m);
        assert_eq!(m.seen.len(), 5);
        assert_eq!(end, 40);
        assert_eq!(eng.events_processed(), 5);
    }

    #[test]
    fn deadline_stops_the_clock() {
        let mut eng = Engine::new();
        eng.schedule_at(10, 1);
        eng.schedule_at(100, 2);
        let mut m = Recorder {
            seen: vec![],
            chain: false,
        };
        let end = eng.run_until(&mut m, 50);
        assert_eq!(end, 50);
        assert_eq!(m.seen, vec![(10, 1)]);
        // The event after the deadline is still queued; a later run sees it.
        eng.run(&mut m);
        assert_eq!(m.seen, vec![(10, 1), (100, 2)]);
    }

    struct Stopper(u32);
    impl Model for Stopper {
        type Event = u32;
        fn handle(&mut self, ev: u32, ctx: &mut Ctx<u32>) {
            self.0 += 1;
            if ev == 2 {
                ctx.stop();
            }
            ctx.schedule(1, ev + 1);
        }
    }

    #[test]
    fn model_can_stop_early() {
        let mut eng = Engine::new();
        eng.schedule_at(0, 1);
        let mut m = Stopper(0);
        eng.run(&mut m);
        assert_eq!(m.0, 2);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut eng = Engine::<u32>::new();
        eng.schedule_at(100, 1);
        let mut m = Recorder {
            seen: vec![],
            chain: false,
        };
        eng.run(&mut m);
        assert_eq!(eng.now(), 100);
        eng.schedule_at(5, 2); // in the past — must clamp to now=100
        eng.run(&mut m);
        assert_eq!(m.seen, vec![(100, 1), (100, 2)]);
    }
}
