//! Virtual time: integer nanoseconds since simulation start.

/// A point in virtual time, in nanoseconds since simulation start.
pub type Time = u64;

/// A span of virtual time, in nanoseconds.
pub type Duration = u64;

/// Nanoseconds per second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// One microsecond in nanoseconds.
pub const US: u64 = 1_000;

/// One millisecond in nanoseconds.
pub const MS: u64 = 1_000_000;

/// Bits per nanosecond for a 1 Gbit/s link (used as `rate * GBPS`).
pub const GBPS: f64 = 1.0;

/// Nanoseconds to serialize `bytes` onto a link of `gbps` Gbit/s.
pub fn wire_ns(bytes: u64, gbps: f64) -> Duration {
    debug_assert!(gbps > 0.0);
    ((bytes as f64 * 8.0) / gbps).ceil() as u64
}

/// Formats a duration for humans (`1.234 ms`, `56.7 us`, `890 ns`).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= MS {
        format!("{:.3} ms", ns as f64 / MS as f64)
    } else if ns >= US {
        format!("{:.1} us", ns as f64 / US as f64)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_100g() {
        // A 1500-byte frame on 100 Gbps takes 120 ns.
        assert_eq!(wire_ns(1500, 100.0), 120);
    }

    #[test]
    fn wire_time_rounds_up() {
        // 1 byte on 100 Gbps = 0.08 ns -> rounds up to 1.
        assert_eq!(wire_ns(1, 100.0), 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1500), "1.5 us");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
    }
}
