//! Deterministic pseudo-random numbers for the simulator.
//!
//! Implemented from scratch (SplitMix64 seeding a xoshiro256\*\* core) so the
//! simulator does not depend on `rand` and its output is stable across
//! versions — reproducibility of every figure depends on this.

/// xoshiro256\*\* generator with SplitMix64 seeding.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator (for per-core streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping (bias negligible for sim use).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // (0, 1]
        -mean * u.ln()
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Normally distributed value (Box–Muller) with given mean and stddev.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + stddev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = Rng::new(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exp(250.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 250.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = Rng::new(17);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "stddev {}", var.sqrt());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng::new(5);
        let mut c = a.fork();
        // Parent and child should not be correlated step-for-step.
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniformity_rough_chi_square() {
        let mut r = Rng::new(23);
        let mut buckets = [0u32; 16];
        let n = 160_000;
        for _ in 0..n {
            buckets[r.below(16) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (b as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} off by {dev}");
        }
    }
}
