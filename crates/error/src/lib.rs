//! Workspace-wide error type.
//!
//! Before this crate existed, malformed configuration aborted the process
//! via `assert!` deep inside constructors, and a poisoned merge thread
//! propagated its panic through `process_parallel`. Every fallible entry
//! point (`try_install`, `StackSim::try_run`, `process_parallel`) now
//! returns `Result<_, MflowError>` so callers — the CLI, the bench
//! harness, an eventual control plane — can degrade, report, and retry
//! instead of dying.
//!
//! The enum is deliberately small: configuration rejection (with the
//! offending field named), a poisoned merge stage, and total worker loss.
//! Everything recoverable (sheds, flushes, redispatches) is *accounting*,
//! not an error, and lives in `RunOutput` / `RunReport` counters.

use std::error::Error;
use std::fmt;

/// The workspace error type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MflowError {
    /// A configuration field failed validation. `field` names the field
    /// (stable, suitable for tests to match on); `reason` explains the
    /// constraint that was violated.
    InvalidConfig {
        field: &'static str,
        reason: String,
    },
    /// The merge stage panicked; the run's output is unusable.
    MergerPoisoned,
    /// Every worker lane died before the input was fully dispatched.
    NoLiveWorkers,
}

impl MflowError {
    /// Shorthand for an [`MflowError::InvalidConfig`].
    pub fn invalid(field: &'static str, reason: impl Into<String>) -> Self {
        MflowError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }

    /// The offending field, if this is a configuration error.
    pub fn field(&self) -> Option<&'static str> {
        match self {
            MflowError::InvalidConfig { field, .. } => Some(field),
            _ => None,
        }
    }
}

impl fmt::Display for MflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MflowError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            MflowError::MergerPoisoned => write!(f, "merge stage panicked"),
            MflowError::NoLiveWorkers => {
                write!(f, "all worker lanes died before dispatch completed")
            }
        }
    }
}

impl Error for MflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = MflowError::invalid("workers", "must be >= 1");
        assert_eq!(e.to_string(), "invalid config: workers: must be >= 1");
        assert_eq!(e.field(), Some("workers"));
    }

    #[test]
    fn non_config_errors_have_no_field() {
        assert_eq!(MflowError::MergerPoisoned.field(), None);
        assert!(MflowError::NoLiveWorkers.to_string().contains("worker"));
    }
}
